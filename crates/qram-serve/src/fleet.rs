//! The multi-tenant QRAM fleet: a routing tier over `R` serving replicas
//! with epoch-replicated writes.
//!
//! [`QramFleet`] scales the §5 quantum-data-center service *out*: it runs
//! `R` independent [`Replica`] cores — each a full sharded QRAM with its
//! own dispatcher, admission interval, and pipeline slots — behind a
//! front-end router, all inside one discrete-event reactor:
//!
//! ```text
//!        tenant streams (quotas, SLO classes — qram-sched)
//!                     │
//!                     ▼
//!   ┌────────────────────────────────────┐  routing tier (this module)
//!   │ quota / SLO shedding  →  placement │  ConsistentHashPlacement
//!   └────────┬──────────┬──────────┬─────┘  LeastLoadedPlacement
//!            ▼          ▼          ▼
//!       ┌─────────┐┌─────────┐┌─────────┐   R replica cores
//!       │Replica 0││Replica 1││Replica 2│   (dispatch queues, I/K
//!       └────┬────┘└────┬────┘└────┬────┘    spacing, backpressure)
//!            ▼          ▼          ▼
//!       ┌────────────────────────────────┐  epoch-replicated memory
//!       │ ReplicatedMemory: fleet epoch, │  (qram-core): stale reads
//!       │ per-replica applied epochs     │  flagged, never silent
//!       └────────────────────────────────┘
//! ```
//!
//! * **Placement** is pluggable ([`PlacementPolicy`]):
//!   [`ConsistentHashPlacement`] routes by the query's principal address
//!   modulo `R` — the same residue-class interleave `ShardedQram` uses
//!   for shards, giving exact fairness on uniform address sweeps and
//!   stable address → replica affinity (memoized-read locality);
//!   [`LeastLoadedPlacement`] routes to the replica with the fewest
//!   queued + in-flight queries that still has queue room, so a shedding
//!   replica is never chosen while another can absorb the arrival.
//! * **Multi-tenancy** threads through the [`AdmissionPolicy`] stack's
//!   tenant hooks: a tenant at its outstanding-request quota is shed at
//!   the router ([`ShedReason::QuotaExceeded`]), and a sub-interactive
//!   [`SloClass`] only gets its class's share of a bounded replica queue
//!   ([`ShedReason::SloShed`]).
//! * **Writes** ([`FleetWrite`]) commit at one origin replica, bump the
//!   fleet epoch of a [`ReplicatedMemory`], and reach the other replicas
//!   one replication lag later. Every dispatch is stamped with its
//!   replica's applied epoch: queries that ran against a superseded
//!   memory version are reported with [`FleetQuery::stale`] set — the
//!   consistency contract is *detectability*, not freshness.
//!
//! With `R = 1`, no writes, and the default tenant, the fleet reduces
//! exactly to [`QramService`] — same timings, same outcomes, same
//! shedding (property-tested in `tests/fleet.rs`).
//!
//! **Fault tolerance.** [`QramFleet::serve_with_faults`] runs the same
//! loop under a deterministic [`FaultPlan`]: a per-replica health state
//! machine ([`ReplicaHealth`]) fed by heartbeat misses and
//! completion-latency assertions steers health-aware placement around
//! `Down` replicas; queries lost to a crash or a corrupted outcome are
//! re-dispatched under a capped exponential-backoff [`RetryPolicy`];
//! Interactive tenants may hedge; per-tenant deadlines convert unbounded
//! waiting into [`ShedReason::DeadlineExceeded`]; and an optional
//! [`BrownoutController`] sheds whole SLO classes, cheapest first, when
//! the routable fleet runs hot. Recovering replicas replay the
//! replication log before rejoining, so stale reads stay flagged across
//! failures. The empty plan with the default [`FaultConfig`] is
//! bit-identical to [`QramFleet::serve`]'s fault-free loop (pinned by
//! `tests/fleet_faults.rs` against [`QramFleet::serve_reference`]).
//!
//! [`SloClass`]: qram_sched::SloClass
//! [`QramService`]: crate::QramService
//! [`RetryPolicy`]: qram_sched::RetryPolicy

use std::collections::BTreeMap;
use std::fmt;

use qram_core::store::{
    chunk_digests, frame, CheckpointPolicy, DurableFleet, SimDir, StoreError, SyncSummary,
};
use qram_core::{ExecError, QramModel, ReplicatedMemory, ReplicatedWrite, ShardedQram};
use qram_metrics::{
    AvailabilityCounters, HistogramFamily, IntegrityCounters, LatencyHistogram, Layers, QueryRate,
    TimingModel,
};
use qram_sched::{
    AdmissionPolicy, FifoAdmission, QramServer, QueryRequest, RetryPolicy, Schedule, SloClass,
    TenantId,
};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::fault::{
    corrupt_outcome, parity_bit, BrownoutController, Fault, FaultConfig, FaultPlan, ReplicaHealth,
    ReplicationFate,
};
use crate::reactor::EventQueue;
use crate::replica::{Replica, ReplicaEvent};

/// A user query arriving at the fleet router.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequest {
    /// Caller-chosen request identifier (reported back in the
    /// [`FleetReport`]; need not be unique).
    pub id: usize,
    /// The tenant issuing the query (quota and SLO lookups key on this).
    pub tenant: TenantId,
    /// Arrival instant in virtual layer time.
    pub arrival: Layers,
    /// The queried address superposition.
    pub address: AddressState,
}

/// A memory write submitted to the fleet: committed at `origin` when the
/// reactor reaches `at`, replicated everywhere one replication lag later.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetWrite {
    /// Commit instant in virtual layer time.
    pub at: Layers,
    /// The replica the write commits at synchronously.
    pub origin: usize,
    /// The written global cell address.
    pub address: u64,
    /// The written value.
    pub value: u64,
}

/// Configuration of the fleet router.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FleetConfig {
    /// Per-replica bound on requests waiting in the dispatch queues.
    /// Arrivals beyond it (or beyond the tenant's SLO share of it) are
    /// shed. `None` queues without bound and disables SLO shedding.
    pub queue_capacity: Option<usize>,
    /// Delay between a write committing at its origin and every other
    /// replica applying it. Zero replicates within the same instant.
    pub replication_lag: Layers,
}

/// Why the router shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ShedReason {
    /// The placed replica's arrival queue was full.
    QueueFull,
    /// The tenant was at its outstanding-request quota.
    QuotaExceeded,
    /// The tenant's SLO class exhausted its share of the replica queue.
    SloShed,
    /// The query's per-tenant deadline passed before it could dispatch.
    DeadlineExceeded,
    /// Every dispatch attempt was lost (crash or corruption) and the
    /// retry backoff budget ran out.
    RetriesExhausted,
    /// The brownout controller was shedding the tenant's SLO class.
    Brownout,
    /// No routable (`Healthy` or `Suspect`) replica could take the query.
    NoHealthyReplica,
}

/// One shed request. Router sheds (quota, queue, SLO, brownout, no
/// healthy replica) append in arrival order; retry-budget and deadline
/// sheds append when they resolve, later in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedRequest {
    /// The request identifier.
    pub id: usize,
    /// The tenant that issued it.
    pub tenant: TenantId,
    /// Why the router refused it.
    pub reason: ShedReason,
}

/// The load signal a [`PlacementPolicy`] ranks replicas by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaLoad {
    /// Requests waiting in the replica's dispatch queues.
    pub queued: usize,
    /// Queries in flight in the replica's shard pipelines.
    pub in_flight: u32,
    /// True when the replica's bounded arrival queue still has room.
    pub has_room: bool,
    /// The replica's health as seen by the fleet's failure detector
    /// (always [`ReplicaHealth::Healthy`] in the fault-free loop).
    pub health: ReplicaHealth,
}

impl ReplicaLoad {
    /// Queued plus in-flight: the scalar load of the replica.
    #[must_use]
    pub fn load(&self) -> usize {
        self.queued + self.in_flight as usize
    }

    /// True when the router may place new queries here.
    #[must_use]
    pub fn routable(&self) -> bool {
        self.health.routable()
    }
}

/// Chooses the replica a request is routed to.
pub trait PlacementPolicy {
    /// The replica index for `request` given the current per-replica
    /// loads (`loads.len()` is the fleet size, always ≥ 1). Must return
    /// an index below `loads.len()`.
    fn place(&self, request: &FleetRequest, loads: &[ReplicaLoad]) -> usize;
}

/// Routes by the query's principal (first) basis address modulo the fleet
/// size — the same residue-class interleave [`ShardedQram`] uses across
/// shards, one level up.
///
/// Uniform cyclic address sweeps land exactly evenly (per-replica
/// dispatch counts never differ by more than one), and a given address
/// always revisits the same replica, so its memoized read stays hot.
/// When the home replica is not routable (`Down` or `Recovering`), the
/// ring probes linearly to the next routable replica — address affinity
/// degrades gracefully around failures and snaps back on rejoin. With
/// every replica healthy the probe never moves, so the fault-free route
/// is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConsistentHashPlacement;

impl PlacementPolicy for ConsistentHashPlacement {
    fn place(&self, request: &FleetRequest, loads: &[ReplicaLoad]) -> usize {
        let principal = request
            .address
            .iter()
            .next()
            .map_or(0, |&(_, address)| address);
        let home = (principal % loads.len() as u64) as usize;
        (0..loads.len())
            .map(|step| (home + step) % loads.len())
            .find(|&r| loads[r].routable())
            .unwrap_or(home)
    }
}

/// Routes to the replica with the smallest queued + in-flight load that
/// still has queue room (ties break deterministically to the lowest
/// index). `Suspect` replicas rank after healthy ones at equal load, and
/// non-routable replicas are excluded while any routable one exists; only
/// when every routable replica is full does it fall back to the
/// least-loaded routable one — a shedding replica is never chosen while
/// another could absorb the arrival.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeastLoadedPlacement;

impl PlacementPolicy for LeastLoadedPlacement {
    fn place(&self, _request: &FleetRequest, loads: &[ReplicaLoad]) -> usize {
        let least = |indices: &mut dyn Iterator<Item = usize>| {
            indices.min_by_key(|&r| {
                (
                    loads[r].health == ReplicaHealth::Suspect,
                    loads[r].load(),
                    r,
                )
            })
        };
        least(&mut (0..loads.len()).filter(|&r| loads[r].routable() && loads[r].has_room))
            .or_else(|| least(&mut (0..loads.len()).filter(|&r| loads[r].routable())))
            .or_else(|| least(&mut (0..loads.len())))
            .expect("a fleet has at least one replica")
    }
}

/// One query served by the fleet, in completion order aligned with
/// [`FleetReport::outcomes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetQuery {
    /// The request identifier.
    pub id: usize,
    /// The tenant that issued it.
    pub tenant: TenantId,
    /// Arrival instant at the router.
    pub arrival: Layers,
    /// Dispatch (admission) instant at the replica.
    pub start: Layers,
    /// Completion instant.
    pub finish: Layers,
    /// The replica that served the query.
    pub replica: usize,
    /// The shard within that replica.
    pub shard: usize,
    /// The memory epoch the replica had applied when the query
    /// dispatched.
    pub epoch: u64,
    /// True when the serving replica trailed the fleet epoch at dispatch:
    /// the read observed a superseded memory version. Stale results are
    /// always flagged, never silently reported as fresh.
    pub stale: bool,
    /// Dispatch attempts this query consumed, counting the first: `1` in
    /// fault-free serving, more when crashes or corrupted outcomes forced
    /// retries (hedges do not count against the attempt budget).
    pub attempts: u32,
}

impl FleetQuery {
    /// The latency the requester experienced: `finish − arrival`.
    #[must_use]
    pub fn response_latency(&self) -> Layers {
        self.finish - self.arrival
    }
}

/// Reactor events of the fleet, in virtual layer time. Arrivals live in a
/// sorted list merged against the heap (arrival-first at ties), exactly
/// as in the single-replica service.
#[derive(Debug)]
enum Event {
    /// A write commits at its origin replica.
    Write(FleetWrite),
    /// The log prefix up to `epoch` reaches every replica.
    Replicate { epoch: u64 },
    /// The `index`-th query dispatched at `replica` leaves its pipeline.
    Completion { replica: usize, index: usize },
    /// Wake `replica`'s dispatcher at an admission-interval boundary.
    Poll { replica: usize },
    /// An injected [`Fault::Crash`] fires at `replica`.
    Crash { replica: usize },
    /// An injected [`Fault::Recover`] restarts `replica`.
    Recover { replica: usize },
    /// `replica` finished replaying the replication log and rejoins.
    RejoinDone { replica: usize },
    /// An injected [`Fault::StallShard`] window opens.
    StallStart { replica: usize, shard: usize },
    /// An injected [`Fault::StallShard`] window closes.
    StallEnd { replica: usize, shard: usize },
    /// The health monitor samples heartbeats and brownout occupancy.
    MonitorTick,
    /// The anti-entropy scrubber audits the WAL and replica digests.
    ScrubTick,
    /// The open commit group's flush deadline: land it even if it never
    /// fills. `seq` is the durability tier's sync count when the group
    /// opened — a later sync makes the firing stale.
    WalFlush { seq: u64 },
    /// An injected [`Fault::DiskCorrupt`] flips a bit in one replica
    /// memory cell, bypassing the replication log.
    DiskCorrupt { replica: usize, cell: u64 },
    /// A lost query's backoff elapsed: re-place and re-dispatch it.
    Retry { qid: usize },
    /// An Interactive query may deserve a duplicate dispatch.
    HedgeCheck { qid: usize },
    /// A queued copy of query `qid` expired at its deadline.
    Expired { qid: usize },
}

/// The outcome of one fleet serving run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    timing: TimingModel,
    completed: Vec<FleetQuery>,
    outcomes: Vec<QueryOutcome>,
    shed: Vec<ShedRequest>,
    per_replica_dispatches: Vec<u64>,
    per_tenant: HistogramFamily<TenantId>,
    per_replica: HistogramFamily<usize>,
    stale_served: u64,
    fleet_epoch: u64,
    availability: AvailabilityCounters,
    integrity: IntegrityCounters,
}

impl FleetReport {
    /// Served queries in completion order.
    #[must_use]
    pub fn completed(&self) -> &[FleetQuery] {
        &self.completed
    }

    /// Query outcomes aligned with [`Self::completed`].
    #[must_use]
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Requests that were shed (see [`ShedRequest`] for ordering).
    #[must_use]
    pub fn shed(&self) -> &[ShedRequest] {
        &self.shed
    }

    /// Shed requests with the given reason.
    #[must_use]
    pub fn shed_count(&self, reason: ShedReason) -> usize {
        self.shed.iter().filter(|s| s.reason == reason).count()
    }

    /// Shed counts rolled up per reason (reasons that shed nothing are
    /// absent).
    #[must_use]
    pub fn shed_by_reason(&self) -> BTreeMap<ShedReason, usize> {
        let mut rollup = BTreeMap::new();
        for s in &self.shed {
            *rollup.entry(s.reason).or_insert(0) += 1;
        }
        rollup
    }

    /// The fault-tolerance ledger of the run: retries, hedges, failovers,
    /// detected corruptions, crashes, recoveries, and downtime. All zero
    /// for a fault-free run.
    #[must_use]
    pub fn availability(&self) -> &AvailabilityCounters {
        &self.availability
    }

    /// The durability ledger of the run: WAL appends, checkpoints, scrub
    /// cycles, digest mismatches, and repairs. All zero for runs without
    /// disk faults, scrubbing, or an external durable store.
    #[must_use]
    pub fn integrity(&self) -> &IntegrityCounters {
        &self.integrity
    }

    /// Mean time to repair (crash → rejoin), or `None` when no replica
    /// completed a recovery.
    #[must_use]
    pub fn mttr(&self) -> Option<Layers> {
        self.availability.mttr()
    }

    /// Queries dispatched per replica.
    #[must_use]
    pub fn per_replica_dispatches(&self) -> &[u64] {
        &self.per_replica_dispatches
    }

    /// Per-tenant response-latency histograms, tenant-ordered.
    #[must_use]
    pub fn per_tenant(&self) -> &HistogramFamily<TenantId> {
        &self.per_tenant
    }

    /// Per-replica response-latency histograms, index-ordered.
    #[must_use]
    pub fn per_replica(&self) -> &HistogramFamily<usize> {
        &self.per_replica
    }

    /// The fleet-wide response-latency histogram (all tenants merged).
    #[must_use]
    pub fn latency_histogram(&self) -> LatencyHistogram {
        self.per_tenant.merged()
    }

    /// A response-latency quantile for one tenant, in the timing model's
    /// wall-clock microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the tenant completed nothing or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn tenant_latency_micros(&self, tenant: TenantId, q: f64) -> f64 {
        let histogram = self
            .per_tenant
            .get(tenant)
            .expect("tenant has completed queries");
        self.timing.layers_to_micros(histogram.quantile(q))
    }

    /// Queries served against a superseded memory version (and flagged).
    #[must_use]
    pub fn stale_served(&self) -> u64 {
        self.stale_served
    }

    /// The final fleet epoch: total writes committed during the run.
    #[must_use]
    pub fn fleet_epoch(&self) -> u64 {
        self.fleet_epoch
    }

    /// Completion instant of the last served query.
    #[must_use]
    pub fn makespan(&self) -> Layers {
        self.completed
            .iter()
            .map(|c| c.finish)
            .fold(Layers::ZERO, Layers::max)
    }

    /// The observation window: first arrival → last completion.
    /// [`Layers::ZERO`] when nothing completed.
    #[must_use]
    pub fn window(&self) -> Layers {
        let Some(first_arrival) = self.completed.iter().map(|c| c.arrival).reduce(Layers::min)
        else {
            return Layers::ZERO;
        };
        self.makespan() - first_arrival
    }

    /// Aggregate served queries per second under the fleet's timing
    /// model, over the first-arrival → makespan window;
    /// [`QueryRate::ZERO`] when nothing completed (never `NaN`).
    #[must_use]
    pub fn query_rate(&self) -> QueryRate {
        if self.completed.is_empty() {
            return QueryRate::ZERO;
        }
        QueryRate::new(self.completed.len() as f64 / self.timing.layers_to_seconds(self.window()))
    }

    /// The realized timings as a `qram-sched` [`Schedule`], for the
    /// `R = 1` equivalence pin against [`QramService`].
    ///
    /// [`QramService`]: crate::QramService
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        Schedule::from_entries(
            self.completed
                .iter()
                .map(|c| qram_sched::ScheduledQuery {
                    request: QueryRequest {
                        id: c.id,
                        arrival: c.arrival,
                    },
                    start: c.start,
                    finish: c.finish,
                })
                .collect(),
        )
    }
}

/// A multi-tenant fleet of `R` QRAM serving replicas behind a routing
/// tier, with epoch-replicated writes.
///
/// # Examples
///
/// ```
/// use qram_core::ShardedQram;
/// use qram_metrics::{Capacity, Layers, TimingModel};
/// use qram_sched::TenantId;
/// use qram_serve::{FleetRequest, QramFleet};
/// use qsim::branch::{AddressState, ClassicalMemory};
///
/// let qram = ShardedQram::fat_tree(Capacity::new(16)?, 2);
/// let mut fleet = QramFleet::fifo(qram, 2, TimingModel::paper_default());
/// let memory = ClassicalMemory::from_words(1, &[1; 16])?;
/// let requests: Vec<FleetRequest> = (0..8)
///     .map(|id| FleetRequest {
///         id,
///         tenant: TenantId::DEFAULT,
///         arrival: Layers::ZERO,
///         address: AddressState::classical(4, id as u64).unwrap(),
///     })
///     .collect();
/// let report = fleet.serve(&memory, requests, Vec::new())?;
/// assert_eq!(report.completed().len(), 8);
/// // The residue-class ring splits a uniform sweep exactly evenly.
/// assert_eq!(report.per_replica_dispatches(), &[4, 4]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QramFleet<
    M: QramModel + Clone,
    P: AdmissionPolicy = FifoAdmission,
    L: PlacementPolicy = ConsistentHashPlacement,
> {
    backends: Vec<ShardedQram<M>>,
    timing: TimingModel,
    policy: P,
    placement: L,
    config: FleetConfig,
}

impl<M: QramModel + Clone> QramFleet<M, FifoAdmission, ConsistentHashPlacement> {
    /// A FIFO fleet of `replicas` copies of `qram` under consistent-hash
    /// placement, unbounded queues, and instant replication.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn fifo(qram: ShardedQram<M>, replicas: usize, timing: TimingModel) -> Self {
        QramFleet::new(
            qram,
            replicas,
            timing,
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig::default(),
        )
    }
}

impl<M: QramModel + Clone, P: AdmissionPolicy, L: PlacementPolicy> QramFleet<M, P, L> {
    /// A fleet of `replicas` copies of `qram` with explicit admission
    /// policy, placement policy, and configuration.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn new(
        qram: ShardedQram<M>,
        replicas: usize,
        timing: TimingModel,
        policy: P,
        placement: L,
        config: FleetConfig,
    ) -> Self {
        assert!(replicas >= 1, "a fleet needs at least one replica");
        QramFleet {
            backends: vec![qram; replicas],
            timing,
            policy,
            placement,
            config,
        }
    }

    /// The fleet size `R`.
    #[must_use]
    pub fn num_replicas(&self) -> usize {
        self.backends.len()
    }

    /// The backend serving replica `replica`.
    #[must_use]
    pub fn backend(&self, replica: usize) -> &ShardedQram<M> {
        &self.backends[replica]
    }

    /// The pipelined server equivalent to each replica.
    #[must_use]
    pub fn equivalent_server(&self) -> QramServer {
        QramServer::for_model(&self.backends[0], &self.timing)
    }

    /// Serves a batch of requests (and write commits) to completion:
    /// routes every arrival through quota / SLO shedding and the
    /// placement policy onto a replica core, interleaves write commits
    /// and replication with dispatching in one discrete-event loop, then
    /// executes each replica's dispatched queries against the memory
    /// versions they observed.
    ///
    /// Requests and writes may be supplied in any order (the reactor
    /// orders them by instant; same-instant arrivals precede write
    /// commits and completions, and writes among themselves keep supply
    /// order).
    ///
    /// # Errors
    ///
    /// Returns an error if query execution fails.
    ///
    /// # Panics
    ///
    /// Panics if a request's address width mismatches the QRAM capacity,
    /// a write's origin replica or cell address is out of range, or the
    /// placement policy returns an out-of-range replica.
    pub fn serve(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
    ) -> Result<FleetReport, ExecError> {
        self.serve_with_faults(
            memory,
            requests,
            writes,
            &FaultPlan::none(),
            &FaultConfig::default(),
        )
    }

    /// The fault-free serving loop exactly as it stood before fault
    /// injection existed, kept verbatim as the bit-equality oracle:
    /// `tests/fleet_faults.rs` pins [`QramFleet::serve`] (which routes
    /// through [`QramFleet::serve_with_faults`] with an empty plan)
    /// against this loop — same schedules, same outcomes — for
    /// `R ∈ {1, 2, 4}`. Not part of the supported API.
    ///
    /// # Errors
    ///
    /// Returns an error if query execution fails.
    #[doc(hidden)]
    pub fn serve_reference(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
    ) -> Result<FleetReport, ExecError> {
        let num_replicas = self.backends.len();
        let server = self.equivalent_server();
        let aggregate_cap = self
            .policy
            .in_flight_cap(&server)
            .clamp(1, server.parallelism());
        let address_width = self.backends[0].capacity().address_width();
        let mut replicas: Vec<Replica> = (0..num_replicas)
            .map(|_| {
                Replica::new(
                    self.backends[0].num_shards() as usize,
                    self.backends[0].shard_parallelism(),
                    server.interval(),
                    server.latency(),
                    aggregate_cap,
                    self.config.queue_capacity,
                )
            })
            .collect();

        // Replicated memory + one snapshot per (replica, applied epoch):
        // a dispatched query executes against the exact memory version its
        // replica had applied at dispatch time.
        let mut replicated = ReplicatedMemory::new(memory.clone(), num_replicas);
        let mut snapshots: Vec<BTreeMap<u64, ClassicalMemory>> = (0..num_replicas)
            .map(|_| BTreeMap::from([(0, memory.clone())]))
            .collect();
        // Per-dispatch annotations, indexed [replica][dispatch index].
        let mut dispatch_epochs: Vec<Vec<u64>> = vec![Vec::new(); num_replicas];
        let mut dispatch_stale: Vec<Vec<bool>> = vec![Vec::new(); num_replicas];

        let mut arrivals: Vec<FleetRequest> = requests
            .into_iter()
            .inspect(|r| {
                assert_eq!(
                    r.address.address_width(),
                    address_width,
                    "request address width must match QRAM capacity"
                );
            })
            .collect();
        arrivals.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .expect("event times are finite")
        });
        let total_requests = arrivals.len();
        let mut arrivals = arrivals.into_iter().peekable();

        let mut events: EventQueue<Event> = EventQueue::new();
        for write in writes {
            assert!(
                write.origin < num_replicas,
                "write origin replica {} out of range (R = {num_replicas})",
                write.origin
            );
            events.push(write.at, Event::Write(write));
        }

        let mut completed: Vec<FleetQuery> = Vec::with_capacity(total_requests);
        let mut shed: Vec<ShedRequest> = Vec::new();
        let mut outstanding: BTreeMap<TenantId, u32> = BTreeMap::new();
        let mut per_tenant: HistogramFamily<TenantId> = HistogramFamily::new();
        let mut per_replica: HistogramFamily<usize> = HistogramFamily::new();
        let mut stale_served = 0u64;

        loop {
            let arrival_is_next = match (arrivals.peek(), events.peek_time()) {
                (Some(request), Some(next)) => request.arrival <= next,
                (Some(_), None) => true,
                (None, _) => false,
            };
            // Which replica's dispatcher to pump after handling the event
            // (writes and replication never unblock a dispatcher).
            let mut pump: Option<usize> = None;
            let now;
            if arrival_is_next {
                let request = arrivals.next().expect("peeked arrival exists");
                now = request.arrival;
                let tenant = request.tenant;
                if self
                    .policy
                    .tenant_quota(tenant)
                    .is_some_and(|quota| outstanding.get(&tenant).copied().unwrap_or(0) >= quota)
                {
                    shed.push(ShedRequest {
                        id: request.id,
                        tenant,
                        reason: ShedReason::QuotaExceeded,
                    });
                } else {
                    let loads: Vec<ReplicaLoad> = replicas
                        .iter()
                        .map(|r| ReplicaLoad {
                            queued: r.queued(),
                            in_flight: r.in_flight(),
                            has_room: r.has_queue_room(),
                            health: ReplicaHealth::Healthy,
                        })
                        .collect();
                    let target = self.placement.place(&request, &loads);
                    assert!(
                        target < num_replicas,
                        "placement returned replica {target} of {num_replicas}"
                    );
                    let slo_bound = self
                        .config
                        .queue_capacity
                        .map(|cap| self.policy.tenant_slo(tenant).queue_bound(cap));
                    if slo_bound.is_some_and(|bound| replicas[target].queued() >= bound) {
                        let reason = if replicas[target].has_queue_room() {
                            ShedReason::SloShed
                        } else {
                            ShedReason::QueueFull
                        };
                        shed.push(ShedRequest {
                            id: request.id,
                            tenant,
                            reason,
                        });
                    } else {
                        let offered = replicas[target].offer(
                            request.id,
                            request.id,
                            tenant,
                            request.arrival,
                            None,
                            request.address,
                        );
                        debug_assert!(offered, "the SLO bound is at most the queue bound");
                        *outstanding.entry(tenant).or_insert(0) += 1;
                        pump = Some(target);
                    }
                }
            } else if let Some((at, event)) = events.pop() {
                now = at;
                match event {
                    Event::Write(write) => {
                        let epoch = replicated.write_at(write.origin, write.address, write.value);
                        let applied = replicated.applied_epoch(write.origin);
                        snapshots[write.origin]
                            .insert(applied, replicated.memory(write.origin).clone());
                        if num_replicas > 1 {
                            events.push(
                                now + self.config.replication_lag,
                                Event::Replicate { epoch },
                            );
                        }
                    }
                    Event::Replicate { epoch } => {
                        for (r, snaps) in snapshots.iter_mut().enumerate() {
                            if replicated.catch_up_to(r, epoch) > 0 {
                                snaps.insert(
                                    replicated.applied_epoch(r),
                                    replicated.memory(r).clone(),
                                );
                            }
                        }
                    }
                    Event::Completion { replica, index } => {
                        let tenant = replicas[replica].tenant_of(index);
                        let record = replicas[replica].complete(index, now);
                        let query = FleetQuery {
                            id: record.id,
                            tenant,
                            arrival: record.arrival,
                            start: record.start,
                            finish: record.finish,
                            replica,
                            shard: record.shard,
                            epoch: dispatch_epochs[replica][index],
                            stale: dispatch_stale[replica][index],
                            attempts: 1,
                        };
                        stale_served += u64::from(query.stale);
                        per_tenant.record(tenant, query.response_latency());
                        per_replica.record(replica, query.response_latency());
                        *outstanding.get_mut(&tenant).expect("tenant accepted") -= 1;
                        completed.push(query);
                        pump = Some(replica);
                    }
                    Event::Poll { replica } => {
                        replicas[replica].ack_poll(now);
                        pump = Some(replica);
                    }
                    Event::Crash { .. }
                    | Event::Recover { .. }
                    | Event::RejoinDone { .. }
                    | Event::StallStart { .. }
                    | Event::StallEnd { .. }
                    | Event::MonitorTick
                    | Event::ScrubTick
                    | Event::WalFlush { .. }
                    | Event::DiskCorrupt { .. }
                    | Event::Retry { .. }
                    | Event::HedgeCheck { .. }
                    | Event::Expired { .. } => {
                        unreachable!("the reference loop schedules no fault events")
                    }
                }
            } else {
                break;
            }
            if let Some(target) = pump {
                let range = replicas[target].pump(now, &mut self.policy, |time, ev| {
                    events.push(
                        time,
                        match ev {
                            ReplicaEvent::Completion { index } => Event::Completion {
                                replica: target,
                                index,
                            },
                            ReplicaEvent::Poll => Event::Poll { replica: target },
                            ReplicaEvent::Expired { .. } => {
                                unreachable!("the reference loop offers no deadlines")
                            }
                        },
                    );
                });
                // Stamp each new dispatch with the memory version its
                // replica observes and whether that version is stale.
                for _ in range {
                    dispatch_epochs[target].push(replicated.applied_epoch(target));
                    dispatch_stale[target].push(replicated.is_stale(target));
                }
            }
        }

        let per_replica_dispatches: Vec<u64> =
            replicas.iter().map(|r| r.dispatch_count() as u64).collect();
        debug_assert!(
            replicas.iter().all(|r| r.queued() == 0),
            "every accepted request dispatches"
        );
        debug_assert!(outstanding.values().all(|&n| n == 0));

        // Execute per replica: consecutive dispatches that observed the
        // same applied epoch form one batch against that version's
        // snapshot, flowing through the backend's compiled-plan hot path.
        let mut outcomes_by_replica: Vec<Vec<QueryOutcome>> = Vec::with_capacity(num_replicas);
        for (r, replica) in replicas.into_iter().enumerate() {
            let addresses = replica.into_addresses();
            let epochs = &dispatch_epochs[r];
            let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(addresses.len());
            let mut lo = 0;
            while lo < addresses.len() {
                let mut hi = lo + 1;
                while hi < addresses.len() && epochs[hi] == epochs[lo] {
                    hi += 1;
                }
                let snapshot = &snapshots[r][&epochs[lo]];
                outcomes.extend(self.backends[r].execute_queries(
                    snapshot,
                    &addresses[lo..hi],
                    &[],
                )?);
                lo = hi;
            }
            outcomes_by_replica.push(outcomes);
        }
        // Align outcomes with the completion-ordered report: each replica
        // completes its dispatches in order, so one cursor per replica
        // walks its outcome list front to back.
        let mut cursors = vec![0usize; num_replicas];
        let outcomes: Vec<QueryOutcome> = completed
            .iter()
            .map(|c| {
                let outcome = outcomes_by_replica[c.replica][cursors[c.replica]].clone();
                cursors[c.replica] += 1;
                outcome
            })
            .collect();

        Ok(FleetReport {
            timing: self.timing,
            completed,
            outcomes,
            shed,
            per_replica_dispatches,
            per_tenant,
            per_replica,
            stale_served,
            fleet_epoch: replicated.fleet_epoch(),
            availability: AvailabilityCounters::default(),
            integrity: IntegrityCounters::default(),
        })
    }

    /// Serves a batch of requests under a deterministic [`FaultPlan`]:
    /// the fault-free loop of [`QramFleet::serve`] extended with a
    /// per-replica health state machine, crash failover, capped
    /// exponential-backoff retries, optional hedged dispatch for
    /// Interactive tenants, per-tenant deadlines, and brownout shedding
    /// (see the module docs). Every admitted query ends exactly once in
    /// [`FleetReport::completed`] or [`FleetReport::shed`] — faults lose
    /// dispatch *attempts*, never queries.
    ///
    /// With the empty plan and the default [`FaultConfig`] this is
    /// bit-identical to the fault-free loop: no monitor or fault events
    /// enter the reactor, so the event heap pops in the same order and
    /// the schedules and outcomes match [`QramFleet::serve_reference`]
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns an error if query execution fails.
    ///
    /// # Panics
    ///
    /// Panics on the same conditions as [`QramFleet::serve`], if the plan
    /// names an out-of-range replica or shard, or if monitoring is active
    /// (non-empty plan or a brownout controller) with a non-positive
    /// `monitor_interval`.
    pub fn serve_with_faults(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
        plan: &FaultPlan,
        fault_config: &FaultConfig,
    ) -> Result<FleetReport, ExecError> {
        match self.serve_faulty(memory, requests, writes, plan, fault_config, None) {
            Ok(report) => Ok(report),
            Err(DurableServeError::Exec(e)) => Err(e),
            // Without an external store the durability tier (when disk
            // faults or scrubbing activate it) runs on an in-memory
            // `SimDir`, which cannot fail I/O, and appends are contiguous
            // by construction.
            Err(DurableServeError::Store(e)) => {
                unreachable!("the ephemeral in-memory store cannot fail: {e}")
            }
        }
    }

    /// [`QramFleet::serve_with_faults`] backed by a crash-consistent
    /// [`DurableFleet`] store: every committed write is appended to the
    /// store's write-ahead log (and checkpointed per its policy) before
    /// replication fans out, the Recovering → rejoin flow replays a
    /// restarted replica from the durable chain instead of the in-memory
    /// log, and [`FaultConfig::scrub_interval`] schedules anti-entropy
    /// scrubs that audit the WAL and replica digests against the chain.
    ///
    /// The store's durable chain must end at `memory` (a fresh
    /// [`DurableFleet::create`] from the same image, or a recovered store
    /// whose shadow equals it); this run's fleet epoch `e` is persisted
    /// at store epoch `durable_epoch + e`.
    ///
    /// # Errors
    ///
    /// Returns [`DurableServeError::Exec`] if query execution fails and
    /// [`DurableServeError::Store`] if the store's directory fails.
    ///
    /// # Panics
    ///
    /// As [`QramFleet::serve_with_faults`].
    pub fn serve_durable(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
        plan: &FaultPlan,
        fault_config: &FaultConfig,
        store: &mut DurableFleet,
    ) -> Result<FleetReport, DurableServeError> {
        self.serve_faulty(memory, requests, writes, plan, fault_config, Some(store))
    }

    #[allow(clippy::too_many_lines)]
    fn serve_faulty(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = FleetRequest>,
        writes: impl IntoIterator<Item = FleetWrite>,
        plan: &FaultPlan,
        fault_config: &FaultConfig,
        store: Option<&mut DurableFleet>,
    ) -> Result<FleetReport, DurableServeError> {
        let num_replicas = self.backends.len();
        let num_shards = self.backends[0].num_shards() as usize;
        let server = self.equivalent_server();
        let aggregate_cap = self
            .policy
            .in_flight_cap(&server)
            .clamp(1, server.parallelism());
        let latency = server.latency();
        let address_width = self.backends[0].capacity().address_width();
        let mut replicas: Vec<Replica> = (0..num_replicas)
            .map(|_| {
                Replica::new(
                    num_shards,
                    self.backends[0].shard_parallelism(),
                    server.interval(),
                    latency,
                    aggregate_cap,
                    self.config.queue_capacity,
                )
            })
            .collect();

        let mut replicated = ReplicatedMemory::new(memory.clone(), num_replicas);
        let mut snapshots: Vec<BTreeMap<u64, ClassicalMemory>> = (0..num_replicas)
            .map(|_| BTreeMap::from([(0, memory.clone())]))
            .collect();
        let mut dispatch_epochs: Vec<Vec<u64>> = vec![Vec::new(); num_replicas];
        let mut dispatch_stale: Vec<Vec<bool>> = vec![Vec::new(); num_replicas];
        // Which admitted query each dispatch belongs to, and whether its
        // completion has been consumed (or invalidated by a crash).
        let mut dispatch_qids: Vec<Vec<usize>> = vec![Vec::new(); num_replicas];
        let mut handled: Vec<Vec<bool>> = vec![Vec::new(); num_replicas];

        let mut arrivals: Vec<FleetRequest> = requests
            .into_iter()
            .inspect(|r| {
                assert_eq!(
                    r.address.address_width(),
                    address_width,
                    "request address width must match QRAM capacity"
                );
            })
            .collect();
        arrivals.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .expect("event times are finite")
        });
        let total_requests = arrivals.len();
        let mut arrivals = arrivals.into_iter().peekable();

        let mut events: EventQueue<Event> = EventQueue::new();
        for write in writes {
            assert!(
                write.origin < num_replicas,
                "write origin replica {} out of range (R = {num_replicas})",
                write.origin
            );
            events.push(write.at, Event::Write(write));
        }

        // Fault-tolerance state. Nothing below schedules an event unless
        // the plan is non-empty or a brownout controller is configured —
        // the empty plan keeps the reactor's event sequence (and so its
        // FIFO tie-breaking) identical to the fault-free loop.
        let retry = &fault_config.retry;
        let mut brownout: Option<BrownoutController> =
            fault_config.brownout.map(BrownoutController::new);
        let monitoring =
            !plan.is_empty() || brownout.is_some() || fault_config.adaptive_group_commit.is_some();
        let has_slow = plan.has_slow_faults();
        let keep_address = !plan.is_empty() || fault_config.hedge_delay.is_some();
        let replica_slots = aggregate_cap as usize
            + self
                .config
                .queue_capacity
                .unwrap_or(4 * aggregate_cap as usize);
        let mut states: Vec<QueryState> = Vec::with_capacity(total_requests);
        let mut health = vec![ReplicaHealth::Healthy; num_replicas];
        let mut alive = vec![true; num_replicas];
        let mut misses = vec![0u32; num_replicas];
        let mut down_since: Vec<Option<Layers>> = vec![None; num_replicas];
        let mut rejoin_at: Vec<Option<f64>> = vec![None; num_replicas];
        // Queries stranded on a crashed replica, re-dispatched when the
        // detector declares it Down (or it recovers, whichever first).
        let mut pending_failover: Vec<Vec<usize>> = vec![Vec::new(); num_replicas];
        let mut counters = AvailabilityCounters::default();
        let mut completed_dispatch: Vec<(usize, usize)> = Vec::with_capacity(total_requests);
        let mut corrupted_served: Vec<(usize, usize)> = Vec::new();
        let mut open = 0usize;

        // The durability tier. An external store (serve_durable) always
        // activates it; otherwise disk faults or a scrub interval spin up
        // an ephemeral in-memory store so the faults have a durable chain
        // to lie against and be audited by. Like monitoring, a run that
        // activates none of this schedules no events and touches no disk,
        // keeping the empty-plan reactor bit-identical to the fault-free
        // loop.
        let total_cells = memory.cells().len() as u64;
        let mut ephemeral: Option<DurableFleet> = None;
        let mut durability: Option<Durability<'_>> = match store {
            Some(s) => {
                debug_assert_eq!(
                    s.shadow().cells(),
                    memory.cells(),
                    "the durable chain must end at the run's starting memory"
                );
                s.set_group_commit(fault_config.group_commit);
                Some(Durability::new(s))
            }
            None if plan.has_disk_faults()
                || fault_config.scrub_interval.is_some()
                || fault_config.adaptive_group_commit.is_some() =>
            {
                let fresh = DurableFleet::create_with(
                    Box::new(SimDir::new()),
                    memory,
                    CheckpointPolicy::never(),
                )?
                .with_group_commit(fault_config.group_commit);
                Some(Durability::new(ephemeral.insert(fresh)))
            }
            None => None,
        };
        // Fleet epochs whose Replicate fan-out is already scheduled.
        // With a durability tier, replication only fans out from
        // *synced* epochs (ack-at-sync); the watermark is monotone so a
        // lying-disk rollback and re-append never duplicates an event.
        let mut repl_scheduled = 0u64;

        if monitoring {
            assert!(
                fault_config.monitor_interval.get() > 0.0,
                "monitoring needs a positive monitor interval"
            );
            for fault in plan.faults() {
                match *fault {
                    Fault::Crash { replica, at } => {
                        assert!(replica < num_replicas, "crash names replica {replica}");
                        events.push(at, Event::Crash { replica });
                    }
                    Fault::Recover { replica, at } => {
                        assert!(replica < num_replicas, "recover names replica {replica}");
                        events.push(at, Event::Recover { replica });
                    }
                    Fault::StallShard {
                        replica,
                        shard,
                        from,
                        until,
                    } => {
                        assert!(replica < num_replicas, "stall names replica {replica}");
                        assert!(shard < num_shards, "stall names shard {shard}");
                        events.push(from, Event::StallStart { replica, shard });
                        events.push(until, Event::StallEnd { replica, shard });
                    }
                    Fault::SlowReplica { replica, .. } | Fault::CorruptOutcome { replica, .. } => {
                        assert!(replica < num_replicas, "fault names replica {replica}");
                    }
                    Fault::DiskCorrupt { replica, at, cell } => {
                        assert!(replica < num_replicas, "corruption names replica {replica}");
                        events.push(at, Event::DiskCorrupt { replica, cell });
                    }
                    Fault::DropReplication { .. }
                    | Fault::DelayReplication { .. }
                    | Fault::TornWrite { .. } => {}
                }
            }
            events.push(fault_config.monitor_interval, Event::MonitorTick);
        }
        if durability.is_some() {
            if let Some(interval) = fault_config.scrub_interval {
                assert!(
                    interval.get() > 0.0,
                    "scrubbing needs a positive scrub interval"
                );
                events.push(interval, Event::ScrubTick);
            }
        }

        let mut completed: Vec<FleetQuery> = Vec::with_capacity(total_requests);
        let mut shed: Vec<ShedRequest> = Vec::new();
        let mut outstanding: BTreeMap<TenantId, u32> = BTreeMap::new();
        let mut per_tenant: HistogramFamily<TenantId> = HistogramFamily::new();
        let mut per_replica: HistogramFamily<usize> = HistogramFamily::new();
        let mut stale_served = 0u64;

        loop {
            let arrival_is_next = match (arrivals.peek(), events.peek_time()) {
                (Some(request), Some(next)) => request.arrival <= next,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let mut pump: Option<usize> = None;
            let now;
            if arrival_is_next {
                let request = arrivals.next().expect("peeked arrival exists");
                now = request.arrival;
                let tenant = request.tenant;
                if brownout
                    .as_ref()
                    .is_some_and(|controller| controller.sheds(self.policy.tenant_slo(tenant)))
                {
                    shed.push(ShedRequest {
                        id: request.id,
                        tenant,
                        reason: ShedReason::Brownout,
                    });
                } else if self
                    .policy
                    .tenant_quota(tenant)
                    .is_some_and(|quota| outstanding.get(&tenant).copied().unwrap_or(0) >= quota)
                {
                    shed.push(ShedRequest {
                        id: request.id,
                        tenant,
                        reason: ShedReason::QuotaExceeded,
                    });
                } else {
                    let loads = snapshot_loads(&replicas, &health);
                    let target = self.placement.place(&request, &loads);
                    assert!(
                        target < num_replicas,
                        "placement returned replica {target} of {num_replicas}"
                    );
                    let slo_bound = self
                        .config
                        .queue_capacity
                        .map(|cap| self.policy.tenant_slo(tenant).queue_bound(cap));
                    if !loads[target].routable() {
                        shed.push(ShedRequest {
                            id: request.id,
                            tenant,
                            reason: ShedReason::NoHealthyReplica,
                        });
                    } else if slo_bound.is_some_and(|bound| replicas[target].queued() >= bound) {
                        let reason = if replicas[target].has_queue_room() {
                            ShedReason::SloShed
                        } else {
                            ShedReason::QueueFull
                        };
                        shed.push(ShedRequest {
                            id: request.id,
                            tenant,
                            reason,
                        });
                    } else {
                        let qid = states.len();
                        let deadline = self
                            .policy
                            .tenant_deadline(tenant)
                            .map(|budget| request.arrival + budget);
                        let address = keep_address.then(|| request.address.clone());
                        let offered = replicas[target].offer(
                            request.id,
                            qid,
                            tenant,
                            request.arrival,
                            deadline,
                            request.address,
                        );
                        debug_assert!(offered, "the SLO bound is at most the queue bound");
                        states.push(QueryState {
                            id: request.id,
                            tenant,
                            arrival: request.arrival,
                            deadline,
                            address,
                            attempts: 1,
                            outstanding: 1,
                            done: false,
                            last_replica: target,
                            hedged: false,
                            hedge_replica: None,
                        });
                        *outstanding.entry(tenant).or_insert(0) += 1;
                        open += 1;
                        if let Some(delay) = fault_config.hedge_delay {
                            if self.policy.tenant_slo(tenant) == SloClass::Interactive {
                                events.push(request.arrival + delay, Event::HedgeCheck { qid });
                            }
                        }
                        pump = Some(target);
                    }
                }
            } else if let Some((at, event)) = events.pop() {
                now = at;
                match event {
                    Event::Write(write) => {
                        // A write addressed at a dead origin commits at
                        // the first live replica instead: writes survive
                        // crashes even when the client's affinity target
                        // is down.
                        let origin = if alive[write.origin] {
                            write.origin
                        } else {
                            (0..num_replicas)
                                .find(|&r| alive[r])
                                .unwrap_or(write.origin)
                        };
                        let epoch = replicated.write_at(origin, write.address, write.value);
                        let mut synced_to = None;
                        if let Some(d) = durability.as_mut() {
                            // Log the write durably before replication
                            // fans out: the commit-group sync is the
                            // acknowledgment point (per-record policy
                            // syncs right here). A planned torn write
                            // arms the lying-disk hook — the append
                            // reports success, the platter keeps only a
                            // partial record, and a later scrub's rescan
                            // finds and repairs the damage.
                            let w = ReplicatedWrite {
                                epoch,
                                origin,
                                address: write.address,
                                value: write.value,
                            };
                            let summary = d.append(&w, plan.tears(epoch))?;
                            if summary.synced_records > 0 {
                                synced_to = Some(d.synced_fleet_epoch());
                            } else if d.store.pending_records() == 1 {
                                // This write opened a fresh commit
                                // group: arm its flush deadline so a
                                // lull in writes cannot hold the
                                // acknowledgment hostage.
                                let delay = d.store.group_commit().max_delay;
                                if delay > 0.0 {
                                    events.push(
                                        now + Layers::new(delay),
                                        Event::WalFlush { seq: d.syncs },
                                    );
                                }
                            }
                        }
                        let applied = replicated.applied_epoch(origin);
                        snapshots[origin].insert(applied, replicated.memory(origin).clone());
                        if num_replicas > 1 {
                            if durability.is_some() {
                                // Ack-at-sync: replication (and with it
                                // the stale-read watermark) only fans
                                // out from synced epochs.
                                if let Some(to) = synced_to {
                                    schedule_replication(
                                        &mut events,
                                        plan,
                                        self.config.replication_lag,
                                        now,
                                        repl_scheduled,
                                        to,
                                    );
                                    repl_scheduled = repl_scheduled.max(to);
                                }
                            } else {
                                match plan.replication_fate(epoch) {
                                    ReplicationFate::Deliver => {
                                        events.push(
                                            now + self.config.replication_lag,
                                            Event::Replicate { epoch },
                                        );
                                    }
                                    ReplicationFate::Drop => {}
                                    ReplicationFate::Delay(by) => {
                                        events.push(
                                            now + self.config.replication_lag + by,
                                            Event::Replicate { epoch },
                                        );
                                    }
                                }
                            }
                        }
                    }
                    Event::Replicate { epoch } => {
                        // Dead replicas miss the catch-up; recovery replay
                        // carries them past it before they rejoin.
                        for (r, snaps) in snapshots.iter_mut().enumerate() {
                            if alive[r] && replicated.catch_up_to(r, epoch) > 0 {
                                snaps.insert(
                                    replicated.applied_epoch(r),
                                    replicated.memory(r).clone(),
                                );
                            }
                        }
                    }
                    Event::Completion { replica, index } => {
                        if handled[replica][index] {
                            // A crash already failed this dispatch over.
                        } else {
                            handled[replica][index] = true;
                            let qid = dispatch_qids[replica][index];
                            let tenant = replicas[replica].tenant_of(index);
                            let record = replicas[replica].complete(index, now);
                            if monitoring
                                && health[replica] == ReplicaHealth::Healthy
                                && (record.finish - record.start).get()
                                    > latency.get() * fault_config.latency_margin
                            {
                                // Completion-latency assertion: a replica
                                // serving far over nominal is suspect.
                                health[replica] = ReplicaHealth::Suspect;
                            }
                            if plan.corrupts(replica, index) {
                                corrupted_served.push((replica, index));
                                lose_attempt(
                                    qid,
                                    now,
                                    retry,
                                    &mut states,
                                    &mut events,
                                    &mut shed,
                                    &mut outstanding,
                                    &mut counters,
                                    &mut open,
                                );
                            } else if states[qid].done {
                                // The hedge's other copy already won.
                                states[qid].outstanding = states[qid].outstanding.saturating_sub(1);
                            } else {
                                let state = &mut states[qid];
                                state.done = true;
                                state.outstanding = state.outstanding.saturating_sub(1);
                                if state.hedge_replica == Some(replica) {
                                    counters.hedge_wins += 1;
                                }
                                let query = FleetQuery {
                                    id: state.id,
                                    tenant,
                                    arrival: state.arrival,
                                    start: record.start,
                                    finish: record.finish,
                                    replica,
                                    shard: record.shard,
                                    epoch: dispatch_epochs[replica][index],
                                    stale: dispatch_stale[replica][index],
                                    attempts: state.attempts,
                                };
                                stale_served += u64::from(query.stale);
                                per_tenant.record(tenant, query.response_latency());
                                per_replica.record(replica, query.response_latency());
                                *outstanding.get_mut(&tenant).expect("tenant accepted") -= 1;
                                open -= 1;
                                completed.push(query);
                                completed_dispatch.push((replica, index));
                            }
                            pump = Some(replica);
                        }
                    }
                    Event::Poll { replica } => {
                        if alive[replica] {
                            replicas[replica].ack_poll(now);
                            pump = Some(replica);
                        }
                    }
                    Event::Crash { replica } => {
                        if alive[replica] {
                            alive[replica] = false;
                            counters.crashes += 1;
                            down_since[replica] = Some(now);
                            rejoin_at[replica] = None;
                            for qid in replicas[replica].fail() {
                                strand(qid, &mut states, &mut pending_failover[replica]);
                            }
                            for index in 0..dispatch_qids[replica].len() {
                                if !handled[replica][index] {
                                    handled[replica][index] = true;
                                    strand(
                                        dispatch_qids[replica][index],
                                        &mut states,
                                        &mut pending_failover[replica],
                                    );
                                }
                            }
                        }
                    }
                    Event::Recover { replica } => {
                        if !alive[replica] {
                            alive[replica] = true;
                            health[replica] = ReplicaHealth::Recovering;
                            misses[replica] = 0;
                            for qid in std::mem::take(&mut pending_failover[replica]) {
                                counters.failovers += 1;
                                lose_attempt(
                                    qid,
                                    now,
                                    retry,
                                    &mut states,
                                    &mut events,
                                    &mut shed,
                                    &mut outstanding,
                                    &mut counters,
                                    &mut open,
                                );
                            }
                            let replay = Layers::new(
                                fault_config.replay_per_entry.get()
                                    * replicated.lag(replica) as f64,
                            );
                            rejoin_at[replica] = Some((now + replay).get());
                            events.push(now + replay, Event::RejoinDone { replica });
                        }
                    }
                    Event::RejoinDone { replica } => {
                        // The token guards against a crash during replay:
                        // a re-crash clears it and this firing is stale.
                        if alive[replica] && rejoin_at[replica] == Some(now.get()) {
                            rejoin_at[replica] = None;
                            if let Some(d) = durability.as_mut() {
                                // Land the open commit group first so
                                // the rejoin audit sees the full synced
                                // prefix, and fan out replication for
                                // whatever that sync acknowledged.
                                d.flush()?;
                                let to = d.synced_fleet_epoch();
                                if num_replicas > 1 && to > repl_scheduled {
                                    schedule_replication(
                                        &mut events,
                                        plan,
                                        self.config.replication_lag,
                                        now,
                                        repl_scheduled,
                                        to,
                                    );
                                }
                                repl_scheduled = repl_scheduled.max(to);
                                // Replay from disk, not the in-memory
                                // log: audit the WAL, then reset the
                                // restarted replica to the durable
                                // chain's image at its watermark.
                                d.rejoin_from_disk(replica, &mut replicated)?;
                            }
                            // Drain whatever the durable chain did not
                            // cover from the in-memory log (everything,
                            // when no durability tier is active; chunk 0
                            // means "all in one call").
                            let chunk = fault_config.replay_chunk;
                            while replicated.catch_up_by(replica, chunk) > 0 {}
                            debug_assert_eq!(
                                replicated.lag(replica),
                                0,
                                "a rejoined replica is fully caught up"
                            );
                            snapshots[replica].insert(
                                replicated.applied_epoch(replica),
                                replicated.memory(replica).clone(),
                            );
                            health[replica] = ReplicaHealth::Healthy;
                            counters.recoveries += 1;
                            if let Some(since) = down_since[replica].take() {
                                counters.record_downtime(now - since);
                            }
                            pump = Some(replica);
                        }
                    }
                    Event::StallStart { replica, shard } => {
                        replicas[replica].set_shard_stall(shard, true);
                    }
                    Event::StallEnd { replica, shard } => {
                        replicas[replica].set_shard_stall(shard, false);
                        if alive[replica] {
                            pump = Some(replica);
                        }
                    }
                    Event::MonitorTick => {
                        for r in 0..num_replicas {
                            if alive[r] {
                                misses[r] = 0;
                                if health[r] == ReplicaHealth::Suspect {
                                    health[r] = ReplicaHealth::Healthy;
                                }
                            } else {
                                misses[r] += 1;
                                if misses[r] >= 2 && health[r] != ReplicaHealth::Down {
                                    health[r] = ReplicaHealth::Down;
                                    // Scoop queries offered between the
                                    // crash and its detection, then fail
                                    // everything stranded here over.
                                    for qid in replicas[r].fail() {
                                        strand(qid, &mut states, &mut pending_failover[r]);
                                    }
                                    for qid in std::mem::take(&mut pending_failover[r]) {
                                        counters.failovers += 1;
                                        lose_attempt(
                                            qid,
                                            now,
                                            retry,
                                            &mut states,
                                            &mut events,
                                            &mut shed,
                                            &mut outstanding,
                                            &mut counters,
                                            &mut open,
                                        );
                                    }
                                } else if misses[r] == 1 && health[r] != ReplicaHealth::Down {
                                    health[r] = ReplicaHealth::Suspect;
                                }
                            }
                        }
                        if let Some(controller) = brownout.as_mut() {
                            let routable: Vec<usize> = (0..num_replicas)
                                .filter(|&r| health[r].routable())
                                .collect();
                            let occupancy = if routable.is_empty() {
                                1.0
                            } else {
                                routable.iter().map(|&r| replicas[r].load()).sum::<usize>() as f64
                                    / (routable.len() * replica_slots) as f64
                            };
                            controller.observe(occupancy);
                        }
                        if let (Some(bounds), Some(d)) =
                            (fault_config.adaptive_group_commit, durability.as_mut())
                        {
                            // Observe the append rate over the tick,
                            // adapt the batching knob, assert nothing:
                            // the ack-at-sync contract is untouched
                            // because only group *size* moves. Double
                            // while the interval outran the group,
                            // halve when it ran at most half full.
                            let appends = d.counters.wal_appends - d.appends_at_tick;
                            d.appends_at_tick = d.counters.wal_appends;
                            let mut g = d.store.group_commit();
                            let current = g.max_records;
                            let next = if appends > current as u64 {
                                current.saturating_mul(2).min(bounds.max_records)
                            } else if appends <= (current as u64) / 2 {
                                (current / 2).max(bounds.min_records)
                            } else {
                                current
                            };
                            if next != current {
                                g.max_records = next.max(1);
                                d.store.set_group_commit(g);
                            }
                        }
                        if open > 0 || arrivals.peek().is_some() {
                            events.push(now + fault_config.monitor_interval, Event::MonitorTick);
                        }
                    }
                    Event::ScrubTick => {
                        if let Some(d) = durability.as_mut() {
                            // Land the open commit group (and schedule
                            // replication for what it synced) before
                            // auditing, so the disk and the in-memory
                            // view describe the same prefix.
                            d.flush()?;
                            let to = d.synced_fleet_epoch();
                            if num_replicas > 1 && to > repl_scheduled {
                                schedule_replication(
                                    &mut events,
                                    plan,
                                    self.config.replication_lag,
                                    now,
                                    repl_scheduled,
                                    to,
                                );
                            }
                            repl_scheduled = repl_scheduled.max(to);
                            d.scrub(
                                &mut replicated,
                                &alive,
                                fault_config.scrub_chunk_cells,
                                &mut snapshots,
                            )?;
                        }
                        if let Some(interval) = fault_config.scrub_interval {
                            if open > 0 || arrivals.peek().is_some() {
                                events.push(now + interval, Event::ScrubTick);
                            }
                        }
                    }
                    Event::WalFlush { seq } => {
                        if let Some(d) = durability.as_mut() {
                            // Stale when a fuller group already synced
                            // (seq moved on) or the group emptied.
                            if d.syncs == seq && d.store.pending_records() > 0 {
                                d.flush()?;
                                let to = d.synced_fleet_epoch();
                                if num_replicas > 1 && to > repl_scheduled {
                                    schedule_replication(
                                        &mut events,
                                        plan,
                                        self.config.replication_lag,
                                        now,
                                        repl_scheduled,
                                        to,
                                    );
                                }
                                repl_scheduled = repl_scheduled.max(to);
                            }
                        }
                    }
                    Event::DiskCorrupt { replica, cell } => {
                        // Media corruption: one bit flips in the live
                        // replica image, bypassing the replication log —
                        // invisible to staleness tracking, caught only by
                        // a scrub's digest comparison. The snapshot at
                        // the replica's applied epoch is poisoned too, so
                        // queries batched against that version observe
                        // the corruption until a scrub repairs it (the
                        // snapshot table keys on epoch, so the version's
                        // final image decides what its dispatches serve).
                        replicated.corrupt_replica_cell(replica, cell % total_cells);
                        let applied = replicated.applied_epoch(replica);
                        snapshots[replica].insert(applied, replicated.memory(replica).clone());
                    }
                    Event::Retry { qid } => {
                        if !states[qid].done {
                            let loads = snapshot_loads(&replicas, &health);
                            let probe = FleetRequest {
                                id: states[qid].id,
                                tenant: states[qid].tenant,
                                arrival: states[qid].arrival,
                                address: states[qid]
                                    .address
                                    .clone()
                                    .expect("faulty runs keep addresses"),
                            };
                            let target = self.placement.place(&probe, &loads);
                            assert!(
                                target < num_replicas,
                                "placement returned replica {target} of {num_replicas}"
                            );
                            let offered = loads[target].routable()
                                && replicas[target].offer(
                                    probe.id,
                                    qid,
                                    probe.tenant,
                                    probe.arrival,
                                    states[qid].deadline,
                                    probe.address,
                                );
                            states[qid].attempts += 1;
                            if offered {
                                states[qid].outstanding += 1;
                                states[qid].last_replica = target;
                                pump = Some(target);
                            } else {
                                // Nowhere routable (or the queue was
                                // full): the failed placement consumes an
                                // attempt so the budget still bounds the
                                // loop.
                                lose_attempt(
                                    qid,
                                    now,
                                    retry,
                                    &mut states,
                                    &mut events,
                                    &mut shed,
                                    &mut outstanding,
                                    &mut counters,
                                    &mut open,
                                );
                            }
                        }
                    }
                    Event::HedgeCheck { qid } => {
                        let eligible = !states[qid].done
                            && states[qid].outstanding == 1
                            && !states[qid].hedged;
                        if eligible {
                            let candidate = (0..num_replicas)
                                .filter(|&r| {
                                    health[r].routable()
                                        && replicas[r].has_queue_room()
                                        && r != states[qid].last_replica
                                })
                                .min_by_key(|&r| (replicas[r].load(), r));
                            if let Some(target) = candidate {
                                let offered = replicas[target].offer(
                                    states[qid].id,
                                    qid,
                                    states[qid].tenant,
                                    states[qid].arrival,
                                    states[qid].deadline,
                                    states[qid]
                                        .address
                                        .clone()
                                        .expect("hedging runs keep addresses"),
                                );
                                if offered {
                                    let state = &mut states[qid];
                                    state.hedged = true;
                                    state.hedge_replica = Some(target);
                                    state.outstanding += 1;
                                    counters.hedges += 1;
                                    pump = Some(target);
                                }
                            }
                        }
                    }
                    Event::Expired { qid } => {
                        states[qid].outstanding = states[qid].outstanding.saturating_sub(1);
                        if !states[qid].done && states[qid].outstanding == 0 {
                            counters.deadline_expirations += 1;
                            finish_shed(
                                qid,
                                ShedReason::DeadlineExceeded,
                                &mut states,
                                &mut shed,
                                &mut outstanding,
                                &mut open,
                            );
                        }
                    }
                }
            } else {
                break;
            }
            if let Some(target) = pump {
                if alive[target] {
                    let range = replicas[target].pump(now, &mut self.policy, |time, ev| {
                        match ev {
                            ReplicaEvent::Completion { index } => {
                                // A slow-replica window stretches the
                                // service time of completions starting
                                // inside it (guarded so the fault-free
                                // path never round-trips the timestamp
                                // through float arithmetic).
                                let mut at = time;
                                if has_slow {
                                    let start = time - latency;
                                    let factor = plan.slow_factor(target, start);
                                    if factor != 1.0 {
                                        at = start + Layers::new(latency.get() * factor);
                                    }
                                }
                                events.push(
                                    at,
                                    Event::Completion {
                                        replica: target,
                                        index,
                                    },
                                );
                            }
                            ReplicaEvent::Poll => {
                                events.push(time, Event::Poll { replica: target });
                            }
                            ReplicaEvent::Expired { tag } => {
                                events.push(time, Event::Expired { qid: tag });
                            }
                        }
                    });
                    for idx in range {
                        dispatch_epochs[target].push(replicated.applied_epoch(target));
                        dispatch_stale[target].push(replicated.is_stale(target));
                        dispatch_qids[target].push(replicas[target].tag_of(idx));
                        handled[target].push(false);
                    }
                }
            }
        }

        // Drain any still-open commit group: a run ending mid-group
        // (max_delay 0, or the deadline never fired because the reactor
        // emptied) must not report its last writes as unsynced.
        if let Some(d) = durability.as_mut() {
            d.flush()?;
        }

        // A final anti-entropy sweep: divergence injected after the last
        // scheduled tick (or in runs too short to reach one) is still
        // found and repaired before the report closes.
        if fault_config.scrub_interval.is_some() {
            if let Some(d) = durability.as_mut() {
                d.scrub(
                    &mut replicated,
                    &alive,
                    fault_config.scrub_chunk_cells,
                    &mut snapshots,
                )?;
            }
        }

        let per_replica_dispatches: Vec<u64> =
            replicas.iter().map(|r| r.dispatch_count() as u64).collect();
        // The no-lost-queries invariant: every admitted query resolved as
        // Completed or Shed. (Queued hedge-loser copies may legitimately
        // strand on a crashed-and-never-detected replica, so queue
        // emptiness is NOT asserted here, unlike the fault-free loop.)
        debug_assert!(
            states.iter().all(|s| s.done),
            "every admitted query completes or sheds"
        );
        debug_assert!(outstanding.values().all(|&n| n == 0));

        let mut outcomes_by_replica: Vec<Vec<QueryOutcome>> = Vec::with_capacity(num_replicas);
        for (r, replica) in replicas.into_iter().enumerate() {
            let addresses = replica.into_addresses();
            let epochs = &dispatch_epochs[r];
            let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(addresses.len());
            let mut lo = 0;
            while lo < addresses.len() {
                let mut hi = lo + 1;
                while hi < addresses.len() && epochs[hi] == epochs[lo] {
                    hi += 1;
                }
                let snapshot = &snapshots[r][&epochs[lo]];
                outcomes.extend(self.backends[r].execute_queries(
                    snapshot,
                    &addresses[lo..hi],
                    &[],
                )?);
                lo = hi;
            }
            outcomes_by_replica.push(outcomes);
        }
        // Align outcomes with the completion-ordered report. Unlike the
        // fault-free cursor walk, crashed and corrupted dispatches leave
        // holes in a replica's completion order, so each completed query
        // fetches its outcome by its recorded dispatch index (identical
        // to the cursor walk when nothing faults).
        let outcomes: Vec<QueryOutcome> = completed_dispatch
            .iter()
            .map(|&(r, index)| outcomes_by_replica[r][index].clone())
            .collect();

        // Corrupted completions were re-served under the retry budget;
        // verify the parity check would indeed have caught each one.
        for &(r, index) in &corrupted_served {
            let clean = &outcomes_by_replica[r][index];
            let delivered = corrupt_outcome(clean);
            if parity_bit(&delivered) != parity_bit(clean) {
                counters.corruptions_detected += 1;
            }
        }

        Ok(FleetReport {
            timing: self.timing,
            completed,
            outcomes,
            shed,
            per_replica_dispatches,
            per_tenant,
            per_replica,
            stale_served,
            fleet_epoch: replicated.fleet_epoch(),
            availability: counters,
            integrity: durability.map(|d| d.counters).unwrap_or_default(),
        })
    }
}

/// Error from a durable serving run ([`QramFleet::serve_durable`]).
#[derive(Debug)]
pub enum DurableServeError {
    /// Query execution against a memory snapshot failed.
    Exec(ExecError),
    /// The durable store's directory failed.
    Store(StoreError),
}

impl fmt::Display for DurableServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableServeError::Exec(e) => write!(f, "query execution failed: {e}"),
            DurableServeError::Store(e) => write!(f, "durable store failed: {e}"),
        }
    }
}

impl std::error::Error for DurableServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableServeError::Exec(e) => Some(e),
            DurableServeError::Store(e) => Some(e),
        }
    }
}

impl From<ExecError> for DurableServeError {
    fn from(e: ExecError) -> Self {
        DurableServeError::Exec(e)
    }
}

impl From<StoreError> for DurableServeError {
    fn from(e: StoreError) -> Self {
        DurableServeError::Store(e)
    }
}

/// Bytes of a torn WAL append the lying disk keeps: header plus part of
/// the record payload, so the defect lands mid-frame.
const TORN_KEEP_BYTES: usize = frame::HEADER_LEN + 7;

/// Durability bookkeeping for one serving run: the WAL + checkpoint
/// store, the epoch offset between this run's fleet epochs and the
/// store's chain, and the integrity ledger.
struct Durability<'a> {
    store: &'a mut DurableFleet,
    /// The store's durable epoch when the run started: fleet epoch `e`
    /// of this run lives at store epoch `wal_base + e`.
    wal_base: u64,
    counters: IntegrityCounters,
    /// Commit-group syncs paid so far — the freshness token carried by
    /// armed [`Event::WalFlush`] deadlines: a deadline whose `seq` is
    /// behind this counter raced a size-triggered flush and is stale.
    syncs: u64,
    /// `counters.wal_appends` at the last monitor tick, for the
    /// adaptive group-commit controller's per-tick append rate.
    appends_at_tick: u64,
}

impl<'a> Durability<'a> {
    fn new(store: &'a mut DurableFleet) -> Self {
        let wal_base = store.durable_epoch();
        Durability {
            store,
            wal_base,
            counters: IntegrityCounters::default(),
            syncs: 0,
            appends_at_tick: 0,
        }
    }

    /// Folds one store [`SyncSummary`] into the integrity ledger and
    /// the sync sequence number.
    fn note(&mut self, summary: SyncSummary) {
        if summary.synced_records > 0 {
            self.syncs += 1;
            self.counters.wal_syncs += 1;
            self.counters.max_group_records = self
                .counters
                .max_group_records
                .max(summary.synced_records as u64);
        }
        if summary.checkpointed {
            if summary.delta {
                self.counters.delta_checkpoints += 1;
            } else {
                self.counters.checkpoints += 1;
            }
            self.counters.delta_chain_len = Some(self.store.delta_chain_len() as u64);
        }
    }

    /// Logs one committed fleet write durably; `torn` arms the
    /// lying-disk hook so the append reports success while the platter
    /// keeps only [`TORN_KEEP_BYTES`]. Under group commit the record
    /// may buffer; the returned summary says whether a sync landed.
    fn append(&mut self, w: &ReplicatedWrite, torn: bool) -> Result<SyncSummary, StoreError> {
        if torn {
            self.store.dir_mut().tear_next_write(TORN_KEEP_BYTES);
        }
        let stored = ReplicatedWrite {
            epoch: self.wal_base + w.epoch,
            ..*w
        };
        let summary = self.store.append(&stored)?;
        self.counters.wal_appends += 1;
        self.note(summary);
        Ok(summary)
    }

    /// Lands any buffered commit group now (deadline flush, pre-audit
    /// barrier, end-of-run drain).
    fn flush(&mut self) -> Result<SyncSummary, StoreError> {
        let summary = self.store.flush()?;
        self.note(summary);
        Ok(summary)
    }

    /// The highest fleet epoch whose record has reached a synced group
    /// — the ack/replication watermark.
    fn synced_fleet_epoch(&self) -> u64 {
        self.store.durable_epoch().saturating_sub(self.wal_base)
    }

    /// Audits the on-disk WAL against the store's view: a torn tail is
    /// truncated, the watermark rolled back, and the lost acknowledged
    /// epochs re-appended from the fleet's in-memory log (each counted
    /// as a repair).
    fn audit_disk(&mut self, replicated: &ReplicatedMemory) -> Result<(), StoreError> {
        // Land the open group through the ledger first, so the store's
        // own pre-rescan flush has nothing left to sync invisibly.
        self.flush()?;
        let summary = self.store.rescan()?;
        if summary.truncated_bytes > 0 {
            self.counters.torn_tails_truncated += 1;
        }
        if summary.lost_epochs > 0 {
            let from = self.store.durable_epoch();
            for w in replicated.log() {
                let stored_epoch = self.wal_base + w.epoch;
                if stored_epoch > from {
                    let stored = ReplicatedWrite {
                        epoch: stored_epoch,
                        ..*w
                    };
                    let summary = self.store.append(&stored)?;
                    self.counters.wal_appends += 1;
                    self.counters.repairs += 1;
                    self.note(summary);
                }
            }
            // Re-appends buffer under the same group policy — the
            // audit's promise is a durable tail, so land them now.
            self.flush()?;
        }
        Ok(())
    }

    /// Replays a restarted replica from the durable chain: disk audit,
    /// then a reset to the chain's image at its watermark. The caller
    /// drains any remaining in-memory log suffix afterwards.
    fn rejoin_from_disk(
        &mut self,
        replica: usize,
        replicated: &mut ReplicatedMemory,
    ) -> Result<(), StoreError> {
        self.audit_disk(replicated)?;
        let durable_fleet_epoch = self.store.durable_epoch() - self.wal_base;
        if durable_fleet_epoch > replicated.applied_epoch(replica) {
            replicated.reset_replica(replica, self.store.shadow().clone(), durable_fleet_epoch);
        }
        Ok(())
    }

    /// One anti-entropy scrub cycle: audit the WAL, then compare each
    /// live replica's chunked memory digest against the durable chain's
    /// expected state at that replica's applied epoch, repairing
    /// divergence by resetting the replica to the expected image.
    fn scrub(
        &mut self,
        replicated: &mut ReplicatedMemory,
        alive: &[bool],
        chunk_cells: usize,
        snapshots: &mut [BTreeMap<u64, ClassicalMemory>],
    ) -> Result<(), StoreError> {
        self.counters.scrub_cycles += 1;
        self.audit_disk(replicated)?;
        for r in 0..replicated.num_replicas() {
            if !alive[r] {
                continue;
            }
            let applied = replicated.applied_epoch(r);
            // An epoch already compacted behind a checkpoint is not
            // reconstructible — the replica is audited next cycle, once
            // catch-up moves it past the checkpoint watermark.
            let Some(expected) = self.store.state_at(self.wal_base + applied) else {
                continue;
            };
            let want = chunk_digests(&expected, chunk_cells);
            let have = chunk_digests(replicated.memory(r), chunk_cells);
            self.counters.chunks_verified += have.len() as u64;
            let diverged = want.iter().zip(&have).filter(|(w, h)| w != h).count() as u64;
            if diverged > 0 {
                self.counters.mismatches += diverged;
                self.counters.repairs += 1;
                replicated.reset_replica(r, expected, applied);
                // Un-poison the snapshot so the repaired version serves
                // clean reads again.
                snapshots[r].insert(applied, replicated.memory(r).clone());
            }
        }
        Ok(())
    }
}

/// Driver-private bookkeeping for one admitted query in the
/// fault-tolerant loop.
#[derive(Debug)]
struct QueryState {
    id: usize,
    tenant: TenantId,
    arrival: Layers,
    deadline: Option<Layers>,
    /// The queried address, kept for re-dispatch. `None` in fault-free
    /// runs without hedging (no clone on the hot path).
    address: Option<AddressState>,
    /// Dispatch attempts consumed, counting the first.
    attempts: u32,
    /// Live copies: queued or in-flight offers of this query.
    outstanding: u32,
    /// Resolved — completed or shed. Terminal.
    done: bool,
    last_replica: usize,
    hedged: bool,
    hedge_replica: Option<usize>,
}

/// Fans replication catch-ups out for fleet epochs `(from_excl,
/// to_incl]`, each through the fault plan's per-epoch fate. Under the
/// durability tier replication is gated on commit-group syncs, so a
/// single sync may acknowledge — and here schedule — a whole group of
/// epochs at once; the caller advances its `repl_scheduled` watermark
/// to `to_incl` afterwards so rollbacks and re-appends never fan the
/// same epoch out twice.
fn schedule_replication(
    events: &mut EventQueue<Event>,
    plan: &FaultPlan,
    lag: Layers,
    now: Layers,
    from_excl: u64,
    to_incl: u64,
) {
    for epoch in from_excl + 1..=to_incl {
        match plan.replication_fate(epoch) {
            ReplicationFate::Deliver => {
                events.push(now + lag, Event::Replicate { epoch });
            }
            ReplicationFate::Drop => {}
            ReplicationFate::Delay(by) => {
                events.push(now + lag + by, Event::Replicate { epoch });
            }
        }
    }
}

fn snapshot_loads(replicas: &[Replica], health: &[ReplicaHealth]) -> Vec<ReplicaLoad> {
    replicas
        .iter()
        .zip(health)
        .map(|(r, &h)| ReplicaLoad {
            queued: r.queued(),
            in_flight: r.in_flight(),
            has_room: r.has_queue_room(),
            health: h,
        })
        .collect()
}

/// A copy of query `qid` was lost on a crashed replica: already-resolved
/// queries just drop the copy, live ones wait in `pending` for failover.
fn strand(qid: usize, states: &mut [QueryState], pending: &mut Vec<usize>) {
    if states[qid].done {
        states[qid].outstanding = states[qid].outstanding.saturating_sub(1);
    } else {
        pending.push(qid);
    }
}

/// Resolves query `qid` as shed, releasing its quota slot.
fn finish_shed(
    qid: usize,
    reason: ShedReason,
    states: &mut [QueryState],
    shed: &mut Vec<ShedRequest>,
    outstanding_map: &mut BTreeMap<TenantId, u32>,
    open: &mut usize,
) {
    debug_assert!(!states[qid].done, "a query resolves exactly once");
    states[qid].done = true;
    shed.push(ShedRequest {
        id: states[qid].id,
        tenant: states[qid].tenant,
        reason,
    });
    *outstanding_map
        .get_mut(&states[qid].tenant)
        .expect("tenant admitted") -= 1;
    *open -= 1;
}

/// One dispatch attempt of query `qid` was lost (crash, corruption, or an
/// unplaceable retry). When no other copy is live, schedule a retry after
/// the backoff — or shed if the budget is exhausted or the backoff would
/// overrun the deadline.
#[allow(clippy::too_many_arguments)]
fn lose_attempt(
    qid: usize,
    now: Layers,
    retry: &RetryPolicy,
    states: &mut [QueryState],
    events: &mut EventQueue<Event>,
    shed: &mut Vec<ShedRequest>,
    outstanding_map: &mut BTreeMap<TenantId, u32>,
    counters: &mut AvailabilityCounters,
    open: &mut usize,
) {
    states[qid].outstanding = states[qid].outstanding.saturating_sub(1);
    if states[qid].done || states[qid].outstanding > 0 {
        return;
    }
    let attempts = states[qid].attempts;
    if retry.budget_exhausted(attempts) {
        finish_shed(
            qid,
            ShedReason::RetriesExhausted,
            states,
            shed,
            outstanding_map,
            open,
        );
        return;
    }
    let at = now + retry.backoff(attempts);
    if states[qid].deadline.is_some_and(|deadline| at > deadline) {
        counters.deadline_expirations += 1;
        finish_shed(
            qid,
            ShedReason::DeadlineExceeded,
            states,
            shed,
            outstanding_map,
            open,
        );
        return;
    }
    counters.retries += 1;
    events.push(at, Event::Retry { qid });
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_metrics::Capacity;
    use qram_sched::QuotaAdmission;

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn classical_requests(arrivals: &[f64], width: u32, modulus: u64) -> Vec<FleetRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| FleetRequest {
                id,
                tenant: TenantId::DEFAULT,
                arrival: Layers::new(a),
                address: AddressState::classical(width, id as u64 % modulus).unwrap(),
            })
            .collect()
    }

    fn checkerboard(n: u64) -> ClassicalMemory {
        let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
        ClassicalMemory::from_words(1, &cells).unwrap()
    }

    #[test]
    fn consistent_hash_spreads_a_uniform_sweep_exactly() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let mut fleet = QramFleet::fifo(qram, 4, TimingModel::paper_default());
        let requests = classical_requests(&[0.0; 24], 6, 64);
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.per_replica_dispatches(), &[6, 6, 6, 6]);
        for c in report.completed() {
            assert_eq!(c.replica, c.id % 4, "address residue picks the replica");
        }
    }

    #[test]
    fn more_replicas_finish_a_saturated_burst_sooner() {
        let run = |replicas: usize| {
            let qram = ShardedQram::fat_tree(cap(256), 2);
            let mut fleet = QramFleet::fifo(qram, replicas, TimingModel::paper_default());
            let requests = classical_requests(&[0.0; 64], 8, 256);
            fleet
                .serve(&checkerboard(256), requests, Vec::new())
                .unwrap()
                .makespan()
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert!(two < one, "R = 2 beats R = 1: {two:?} vs {one:?}");
        assert!(four < two, "R = 4 beats R = 2: {four:?} vs {two:?}");
    }

    #[test]
    fn writes_replicate_after_the_lag_and_stale_reads_are_flagged() {
        let qram = ShardedQram::fat_tree(cap(16), 1);
        let mut fleet = QramFleet::new(
            qram,
            2,
            TimingModel::paper_default(),
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: None,
                replication_lag: Layers::new(1000.0),
            },
        );
        let memory = ClassicalMemory::from_words(1, &[0; 16]).unwrap();
        // Address 5 routes to replica 1 (5 mod 2); the write commits at
        // replica 0, so replica 1 serves the old value, flagged stale,
        // until replication lands at t = 1050.
        let read = |id: usize, at: f64| FleetRequest {
            id,
            tenant: TenantId::DEFAULT,
            arrival: Layers::new(at),
            address: AddressState::classical(4, 5).unwrap(),
        };
        let write = FleetWrite {
            at: Layers::new(50.0),
            origin: 0,
            address: 5,
            value: 1,
        };
        let report = fleet
            .serve(
                &memory,
                vec![read(0, 0.0), read(1, 100.0), read(2, 2000.0)],
                vec![write],
            )
            .unwrap();
        assert_eq!(report.fleet_epoch(), 1);
        let by_id = |id: usize| {
            report
                .completed()
                .iter()
                .position(|c| c.id == id)
                .expect("completed")
        };
        // Before the write: fresh at epoch 0.
        assert!(!report.completed()[by_id(0)].stale);
        assert_eq!(report.outcomes()[by_id(0)].data_for(5), Some(0));
        // After the write, before replication: flagged stale, old value.
        assert!(report.completed()[by_id(1)].stale);
        assert_eq!(report.completed()[by_id(1)].epoch, 0);
        assert_eq!(report.outcomes()[by_id(1)].data_for(5), Some(0));
        // After replication: fresh at epoch 1, new value.
        assert!(!report.completed()[by_id(2)].stale);
        assert_eq!(report.completed()[by_id(2)].epoch, 1);
        assert_eq!(report.outcomes()[by_id(2)].data_for(5), Some(1));
        assert_eq!(report.stale_served(), 1);
    }

    #[test]
    fn quota_sheds_the_hot_tenant_only() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let policy = QuotaAdmission::new(FifoAdmission).with_quota(TenantId(1), 2);
        let mut fleet = QramFleet::new(
            qram,
            1,
            TimingModel::paper_default(),
            policy,
            ConsistentHashPlacement,
            FleetConfig::default(),
        );
        let requests: Vec<FleetRequest> = (0..12)
            .map(|id| FleetRequest {
                id,
                tenant: TenantId(u32::from(id % 2 == 0)),
                arrival: Layers::ZERO,
                address: AddressState::classical(6, id as u64).unwrap(),
            })
            .collect();
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        // The hot tenant keeps its 2 outstanding; the unlimited tenant
        // keeps all 6.
        assert_eq!(report.shed_count(ShedReason::QuotaExceeded), 4);
        assert!(report.shed().iter().all(|s| s.tenant == TenantId(1)));
        assert_eq!(report.per_tenant().get(TenantId(0)).unwrap().count(), 6);
        assert_eq!(report.per_tenant().get(TenantId(1)).unwrap().count(), 2);
    }

    #[test]
    fn slo_class_gets_only_its_queue_share() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let policy =
            QuotaAdmission::new(FifoAdmission).with_slo(TenantId(2), qram_sched::SloClass::Batch);
        let mut fleet = QramFleet::new(
            qram,
            1,
            TimingModel::paper_default(),
            policy,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: Some(8),
                replication_lag: Layers::ZERO,
            },
        );
        // A burst at t = 0: one dispatches immediately, the rest queue.
        // The batch-class tenant only gets floor(8 · 0.5) = 4 queue slots.
        let requests: Vec<FleetRequest> = (0..12)
            .map(|id| FleetRequest {
                id,
                tenant: TenantId(2),
                arrival: Layers::ZERO,
                address: AddressState::classical(6, id as u64).unwrap(),
            })
            .collect();
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.completed().len(), 5);
        assert_eq!(report.shed_count(ShedReason::SloShed), 7);
        assert_eq!(report.shed_count(ShedReason::QueueFull), 0);
    }

    #[test]
    fn least_loaded_avoids_full_replicas_while_others_have_room() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let mut fleet = QramFleet::new(
            qram,
            2,
            TimingModel::paper_default(),
            FifoAdmission,
            LeastLoadedPlacement,
            FleetConfig {
                queue_capacity: Some(2),
                replication_lag: Layers::ZERO,
            },
        );
        // 6 simultaneous arrivals fill both replicas to the brim (1
        // dispatched + 2 queued each); nothing sheds until every replica
        // is actually full.
        let requests = classical_requests(&[0.0; 7], 6, 64);
        let report = fleet
            .serve(&checkerboard(64), requests, Vec::new())
            .unwrap();
        assert_eq!(report.completed().len(), 6);
        assert_eq!(report.shed_count(ShedReason::QueueFull), 1);
        assert_eq!(report.per_replica_dispatches(), &[3, 3]);
    }

    fn load(queued: usize, in_flight: u32, health: ReplicaHealth) -> ReplicaLoad {
        ReplicaLoad {
            queued,
            in_flight,
            has_room: true,
            health,
        }
    }

    fn probe() -> FleetRequest {
        FleetRequest {
            id: 0,
            tenant: TenantId::DEFAULT,
            arrival: Layers::ZERO,
            address: AddressState::classical(6, 0).unwrap(),
        }
    }

    #[test]
    fn least_loaded_breaks_load_ties_to_the_lowest_index() {
        // Regression: equal loads must pick the lowest index
        // deterministically, not whichever the iterator happened to
        // yield — replicas 1 and 3 tie below replica 0's load.
        let h = ReplicaHealth::Healthy;
        let loads = [load(2, 1, h), load(1, 1, h), load(4, 0, h), load(0, 2, h)];
        assert_eq!(LeastLoadedPlacement.place(&probe(), &loads), 1);
        // A full tie across the fleet picks replica 0.
        let tied = [load(1, 1, h), load(2, 0, h), load(0, 2, h)];
        assert_eq!(LeastLoadedPlacement.place(&probe(), &tied), 0);
    }

    #[test]
    fn least_loaded_ranks_suspects_after_healthy_and_skips_the_down() {
        let loads = [
            load(0, 0, ReplicaHealth::Suspect),
            load(3, 1, ReplicaHealth::Healthy),
            load(1, 0, ReplicaHealth::Down),
        ];
        // The idle suspect loses to the loaded healthy replica; the even
        // less loaded Down replica is not routable at all.
        assert_eq!(LeastLoadedPlacement.place(&probe(), &loads), 1);
        // With every routable replica suspect, the least-loaded suspect
        // wins; only a fully unroutable fleet falls back to anyone.
        let suspects = [
            load(2, 0, ReplicaHealth::Suspect),
            load(1, 0, ReplicaHealth::Suspect),
            load(0, 0, ReplicaHealth::Down),
        ];
        assert_eq!(LeastLoadedPlacement.place(&probe(), &suspects), 1);
        let unroutable = [
            load(2, 0, ReplicaHealth::Down),
            load(1, 0, ReplicaHealth::Recovering),
        ];
        assert_eq!(LeastLoadedPlacement.place(&probe(), &unroutable), 1);
    }

    #[test]
    fn consistent_hash_probes_the_ring_past_down_replicas() {
        // Address 0 homes at replica 0; with it Down the probe walks the
        // ring to the next routable replica.
        let loads = [
            load(0, 0, ReplicaHealth::Down),
            load(5, 2, ReplicaHealth::Recovering),
            load(9, 3, ReplicaHealth::Healthy),
        ];
        assert_eq!(ConsistentHashPlacement.place(&probe(), &loads), 2);
        // Fully healthy, the probe never moves off the home replica.
        let healthy = [
            load(9, 3, ReplicaHealth::Healthy),
            load(0, 0, ReplicaHealth::Healthy),
        ];
        assert_eq!(ConsistentHashPlacement.place(&probe(), &healthy), 0);
        // Nothing routable: fall back to the home replica (the arrival is
        // then shed as NoHealthyReplica by the router).
        let dead = [
            load(0, 0, ReplicaHealth::Down),
            load(0, 0, ReplicaHealth::Down),
        ];
        assert_eq!(ConsistentHashPlacement.place(&probe(), &dead), 0);
    }
}
