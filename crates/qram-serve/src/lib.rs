//! Event-driven online QRAM serving — the §5 quantum-data-center scenario
//! as a long-running service.
//!
//! The paper's §5 imagines a shared QRAM as a data-center appliance:
//! user queries arrive continuously and the machine admits them under its
//! architecture's interval and parallelism constraints. This crate is that
//! serving layer, built on the pluggable scheduling stack of `qram-sched`
//! and the sharded execution backend of `qram-core`:
//!
//! ```text
//!               requests (open loop: Poisson / bursty, Zipf addresses)
//!                  │
//!                  ▼
//!   ┌──────────────────────────────┐   policy layer (qram-sched)
//!   │  AdmissionPolicy             │   FifoAdmission / NoiseAwareAdmission
//!   └──────────────┬───────────────┘
//!                  ▼
//!   ┌──────────────────────────────┐   event core (this crate)
//!   │  EventQueue  +  dispatcher   │   round-robin shard queues,
//!   │  shard 0 │ shard 1 │ … │ K−1 │   I_shard/K admission spacing,
//!   └──────────────┬───────────────┘   K·P_shard in-flight backpressure
//!                  ▼
//!   ┌──────────────────────────────┐   execution (qram-core)
//!   │  ShardedQram::execute_queries│   compiled plans + memoization
//!   └──────────────┬───────────────┘
//!                  ▼
//!   ┌──────────────────────────────┐   measurement (qram-metrics)
//!   │  LatencyHistogram, QueryRate │   p50/p95/p99, throughput
//!   └──────────────────────────────┘
//! ```
//!
//! * [`EventQueue`] — the hand-rolled discrete-event reactor core: a
//!   time-ordered queue over virtual circuit-layer time.
//! * [`QramService`] — the serving loop: per-shard round-robin dispatch
//!   queues over a `ShardedQram`, admission at the divided `I_shard / K`
//!   interval, backpressure at the aggregate `K · P_shard` in-flight
//!   bound (plus an optional bounded arrival queue that sheds load), and
//!   per-query latency recorded into a log-bucketed histogram.
//! * [`ServiceReport`] — completions, outcomes, rejections, fairness
//!   counters, and latency/throughput metrics for one run.
//! * [`Replica`] — the replica-generic dispatch core extracted from the
//!   serving loop: shard queues, capacity accounting, and the pump rule,
//!   reactor-agnostic so one core drives both the single service and the
//!   fleet.
//! * [`QramFleet`] — the multi-tenant routing tier: R replicas behind a
//!   pluggable [`PlacementPolicy`], per-tenant quotas and SLO classes at
//!   admission, epoch-replicated memory writes with flagged stale reads,
//!   and per-tenant/per-replica rollups in a [`FleetReport`].
//! * [`FaultPlan`] — deterministic fault injection for the fleet: crashes
//!   and recoveries, slow replicas, stalled shard queues, dropped or
//!   delayed replication catch-ups, and corrupted outcomes, driven
//!   through the same event reactor for replayable chaos runs. The
//!   serving loop answers with health-driven failover, backoff retries,
//!   hedged dispatch, deadlines, and [`BrownoutController`] degradation
//!   (see [`QramFleet::serve_with_faults`]).
//! * **Durability** — [`QramFleet::serve_durable`] backs the fleet's
//!   write stream with a crash-consistent `qram-core` store (CRC-framed
//!   write-ahead log + atomic checkpoints): writes are logged before
//!   replication fans out, restarted replicas replay from disk instead
//!   of the in-memory log, and an anti-entropy scrubber audits replica
//!   digests against the durable chain, repairing silent divergence
//!   ([`Fault::TornWrite`], [`Fault::DiskCorrupt`]) and reporting it in
//!   the report's [`IntegrityCounters`](qram_metrics::IntegrityCounters).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod fleet;
pub mod reactor;
pub mod replica;
pub mod service;

pub use fault::{
    corrupt_outcome, parity_bit, AdaptiveGroupCommit, BrownoutConfig, BrownoutController, Fault,
    FaultConfig, FaultPlan, ReplicaHealth, ReplicationFate,
};
pub use fleet::{
    ConsistentHashPlacement, DurableServeError, FleetConfig, FleetQuery, FleetReport, FleetRequest,
    FleetWrite, LeastLoadedPlacement, PlacementPolicy, QramFleet, ReplicaLoad, ShedReason,
    ShedRequest,
};
pub use reactor::EventQueue;
pub use replica::{CompletedQuery, Replica, ReplicaEvent};
pub use service::{QramService, ServiceConfig, ServiceReport, ServiceRequest};
