//! A hand-rolled discrete-event reactor core.
//!
//! The serving layer runs in *virtual circuit-layer time*: arrivals,
//! dispatches, and completions are instants in [`Layers`], not wall-clock
//! time, so the reactor is a time-ordered event queue rather than an OS
//! event loop (the vendored tree has no tokio — and needs none: the
//! hardware clock being simulated is the QRAM's layer counter).
//!
//! [`EventQueue`] pops events in non-decreasing time order; events pushed
//! at the same instant pop in push order (FIFO tie-break), which is what
//! makes the reactor's schedules deterministic and lets the service pin
//! its timings bit-for-bit against the analytic schedulers in
//! `qram-sched`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use qram_metrics::Layers;

/// A payload scheduled at a virtual instant. Reverse-ordered so the
/// max-heap pops the earliest time first; `seq` breaks ties FIFO.
#[derive(Debug)]
struct Entry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on both keys: the heap's max is the earliest event,
        // and among ties the lowest sequence number (push order).
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are finite")
            .then(other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue over virtual [`Layers`] time.
///
/// # Examples
///
/// ```
/// use qram_metrics::Layers;
/// use qram_serve::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Layers::new(10.0), "completion");
/// q.push(Layers::new(2.5), "arrival");
/// q.push(Layers::new(10.0), "poll");
/// assert_eq!(q.pop(), Some((Layers::new(2.5), "arrival")));
/// // Same-instant events pop in push order.
/// assert_eq!(q.pop(), Some((Layers::new(10.0), "completion")));
/// assert_eq!(q.pop(), Some((Layers::new(10.0), "poll")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at virtual instant `time`.
    pub fn push(&mut self, time: Layers, payload: T) {
        let entry = Entry {
            time: time.get(),
            seq: self.seq,
            payload,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Removes and returns the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(Layers, T)> {
        self.heap.pop().map(|e| (Layers::new(e.time), e.payload))
    }

    /// The instant of the next event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<Layers> {
        self.heap.peek().map(|e| Layers::new(e.time))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, id) in [(5.0, 'c'), (1.0, 'a'), (3.0, 'b'), (8.0, 'd')] {
            q.push(Layers::new(t), id);
        }
        let order: Vec<char> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for id in 0..100 {
            q.push(Layers::new(7.0), id);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Layers::new(4.0), ());
        q.push(Layers::new(2.0), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Layers::new(2.0)));
        assert_eq!(q.pop().unwrap().0, Layers::new(2.0));
        assert_eq!(q.peek_time(), Some(Layers::new(4.0)));
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Layers::new(10.0), "late");
        q.push(Layers::new(1.0), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(Layers::new(5.0), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
