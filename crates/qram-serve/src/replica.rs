//! The replica-generic serving core: one dispatcher over one sharded
//! backend.
//!
//! [`Replica`] is the pure scheduling state the event loop of
//! [`QramService`] used to carry inline — per-shard round-robin dispatch
//! queues, pipeline-slot accounting, divided-interval admission spacing,
//! and a per-replica response-latency histogram — extracted so the same
//! core can be driven once by [`QramService`] or `R` times by
//! [`QramFleet`] behind a routing tier. The reactor stays outside: a
//! replica never owns an event queue, it *emits* [`ReplicaEvent`]s through
//! a caller-supplied hook and the caller decides how to tag and enqueue
//! them (the service maps them 1:1; the fleet wraps them with the replica
//! index).
//!
//! The dispatch rules are bit-identical to the pre-extraction service
//! loop (and hence to the analytic `OnlineFifoScheduler` recurrence —
//! property-tested in `tests/serving.rs` and `tests/fleet.rs`):
//!
//! * the `j`-th accepted request queues at shard `j mod K`;
//! * admissions are spaced by the divided interval `I_shard / K`;
//! * each shard holds at most `P_shard` in-flight queries and the
//!   aggregate cap bounds the whole replica;
//! * a capacity slot freed at instant `t` cannot be reused retroactively
//!   (`earliest = max(earliest, now)` — the `finishes[k − p]` term of the
//!   recurrence).
//!
//! [`QramService`]: crate::QramService
//! [`QramFleet`]: crate::QramFleet

use std::collections::VecDeque;

use qram_metrics::{LatencyHistogram, Layers};
use qram_sched::{AdmissionPolicy, QueryRequest, TenantId};
use qsim::branch::AddressState;

/// One served query: its timings and owning shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedQuery {
    /// The request identifier.
    pub id: usize,
    /// Arrival instant.
    pub arrival: Layers,
    /// Dispatch (admission) instant.
    pub start: Layers,
    /// Completion instant (`start + latency`).
    pub finish: Layers,
    /// The shard whose dispatch queue served the query.
    pub shard: usize,
}

impl CompletedQuery {
    /// The latency the requester experienced: `finish − arrival`.
    #[must_use]
    pub fn response_latency(&self) -> Layers {
        self.finish - self.arrival
    }
}

/// A request sitting in a shard's dispatch queue.
#[derive(Debug)]
struct Pending {
    id: usize,
    /// Driver-private handle reported back through [`ReplicaEvent::Expired`]
    /// and [`Replica::fail`] — unlike `id` it must be unique per offer
    /// (the fleet uses its query-state index; the service reuses `id`).
    tag: usize,
    /// Accepted-order sequence number: drives round-robin shard selection
    /// even when expiries consume a slot without dispatching.
    seq: usize,
    tenant: TenantId,
    arrival: Layers,
    /// Absolute instant after which the request may no longer dispatch.
    deadline: Option<Layers>,
    address: AddressState,
}

/// A reactor event a replica asks its driver to schedule.
///
/// The replica is reactor-agnostic: it hands these to the scheduling hook
/// passed to [`Replica::pump`] and the driver tags them (e.g. with the
/// replica index) before pushing them onto its own event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaEvent {
    /// The `index`-th dispatched query leaves its shard pipeline.
    Completion {
        /// Dispatch-order index of the completing query.
        index: usize,
    },
    /// Wake the dispatcher at an admission-interval boundary.
    Poll,
    /// A queued request's deadline passed before it could dispatch: the
    /// replica dropped it (it consumes its round-robin slot but never
    /// dispatches, completes, or executes).
    Expired {
        /// The driver-private handle passed to [`Replica::offer`].
        tag: usize,
    },
}

/// The serving core of one QRAM replica: round-robin shard queues, a
/// divided-interval dispatcher, in-flight accounting, and a per-replica
/// latency histogram. Driven from outside by [`Replica::offer`] /
/// [`Replica::complete`] / [`Replica::ack_poll`] / [`Replica::pump`].
#[derive(Debug)]
pub struct Replica {
    shards: usize,
    stagger: Layers,
    latency: Layers,
    shard_parallelism: u32,
    aggregate_cap: u32,
    queue_capacity: Option<usize>,
    shard_queues: Vec<VecDeque<Pending>>,
    pending_total: usize,
    accepted: usize,
    /// Accepted-order index of the next request to consume (dispatch or
    /// expire) — equals `dispatched.len()` only while nothing expires.
    next_seq: usize,
    /// Per-shard stall flags (injected faults): a stalled shard at the
    /// round-robin head blocks the whole strict-FIFO dispatcher.
    stalled: Vec<bool>,
    /// Dispatch-ordered: (request, start, shard).
    dispatched: Vec<(Pending, Layers, usize)>,
    per_shard_dispatches: Vec<u64>,
    inflight: u32,
    shard_inflight: Vec<u32>,
    last_dispatch: Option<Layers>,
    poll_at: Option<f64>,
    histogram: LatencyHistogram,
}

impl Replica {
    /// A replica over `shards` shard queues, dispatching at the divided
    /// interval `stagger` with per-query latency `latency`, bounded by
    /// `shard_parallelism` slots per shard and `aggregate_cap` in
    /// aggregate, with an optional bounded arrival queue.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn new(
        shards: usize,
        shard_parallelism: u32,
        stagger: Layers,
        latency: Layers,
        aggregate_cap: u32,
        queue_capacity: Option<usize>,
    ) -> Self {
        assert!(shards >= 1, "a replica needs at least one shard");
        Replica {
            shards,
            stagger,
            latency,
            shard_parallelism,
            aggregate_cap,
            queue_capacity,
            shard_queues: (0..shards).map(|_| VecDeque::new()).collect(),
            pending_total: 0,
            accepted: 0,
            next_seq: 0,
            stalled: vec![false; shards],
            dispatched: Vec::new(),
            per_shard_dispatches: vec![0; shards],
            inflight: 0,
            shard_inflight: vec![0; shards],
            last_dispatch: None,
            poll_at: None,
            histogram: LatencyHistogram::new(),
        }
    }

    /// Requests waiting in the dispatch queues (dispatched queries do not
    /// count).
    #[must_use]
    pub fn queued(&self) -> usize {
        self.pending_total
    }

    /// Queries currently in flight in the shard pipelines.
    #[must_use]
    pub fn in_flight(&self) -> u32 {
        self.inflight
    }

    /// Queued plus in-flight: the load signal placement policies rank by.
    #[must_use]
    pub fn load(&self) -> usize {
        self.pending_total + self.inflight as usize
    }

    /// True when the bounded arrival queue (if any) still has room — an
    /// offered request would be accepted rather than shed.
    #[must_use]
    pub fn has_queue_room(&self) -> bool {
        self.queue_capacity
            .is_none_or(|cap| self.pending_total < cap)
    }

    /// The arrival-queue bound, if one is configured.
    #[must_use]
    pub fn queue_capacity(&self) -> Option<usize> {
        self.queue_capacity
    }

    /// Queries dispatched so far (the next dispatch gets this index).
    #[must_use]
    pub fn dispatch_count(&self) -> usize {
        self.dispatched.len()
    }

    /// Queries dispatched per shard queue — round-robin fairness means
    /// these never differ by more than one.
    #[must_use]
    pub fn per_shard_dispatches(&self) -> &[u64] {
        &self.per_shard_dispatches
    }

    /// The tenant of the `index`-th dispatched query.
    #[must_use]
    pub fn tenant_of(&self, index: usize) -> TenantId {
        self.dispatched[index].0.tenant
    }

    /// The driver-private tag of the `index`-th dispatched query.
    #[must_use]
    pub fn tag_of(&self, index: usize) -> usize {
        self.dispatched[index].0.tag
    }

    /// Freezes or thaws one shard's dispatch queue (an injected fault).
    /// While the round-robin head sits on a stalled shard the whole
    /// dispatcher blocks — strict FIFO admits nothing out of order. The
    /// driver must re-pump when the stall lifts.
    pub fn set_shard_stall(&mut self, shard: usize, stalled: bool) {
        self.stalled[shard] = stalled;
    }

    /// Takes the replica offline (a crash fault): drains the queued
    /// requests — returning their tags in accepted order so the driver
    /// can fail them over — zeroes the in-flight accounting (those
    /// queries are lost; the driver discards their completion events),
    /// and clears the poll latch. The dispatch history survives so
    /// already-completed work keeps its indices, and the round-robin
    /// cursor advances past the drained requests so dispatch stays
    /// aligned if the replica later rejoins.
    pub fn fail(&mut self) -> Vec<usize> {
        let mut drained: Vec<(usize, usize)> = Vec::with_capacity(self.pending_total);
        for queue in &mut self.shard_queues {
            for pending in queue.drain(..) {
                drained.push((pending.seq, pending.tag));
            }
        }
        drained.sort_unstable();
        self.pending_total = 0;
        self.inflight = 0;
        self.shard_inflight = vec![0; self.shards];
        self.poll_at = None;
        self.next_seq = self.accepted;
        drained.into_iter().map(|(_, tag)| tag).collect()
    }

    /// This replica's response-latency histogram (arrival → completion).
    #[must_use]
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.histogram
    }

    /// Offers an arrival to the replica: queues it at shard
    /// `accepted mod K` and returns `true`, or returns `false` when the
    /// bounded arrival queue is full (the request is shed — the replica
    /// records nothing). `tag` is a driver-private handle echoed back by
    /// [`ReplicaEvent::Expired`] and [`Replica::fail`]; `deadline`, if
    /// set, is the absolute instant past which the request expires
    /// instead of dispatching.
    pub fn offer(
        &mut self,
        id: usize,
        tag: usize,
        tenant: TenantId,
        arrival: Layers,
        deadline: Option<Layers>,
        address: AddressState,
    ) -> bool {
        if !self.has_queue_room() {
            return false;
        }
        self.shard_queues[self.accepted % self.shards].push_back(Pending {
            id,
            tag,
            seq: self.accepted,
            tenant,
            arrival,
            deadline,
            address,
        });
        self.accepted += 1;
        self.pending_total += 1;
        true
    }

    /// Retires the `index`-th dispatched query at instant `now`: frees its
    /// pipeline slots, records its response latency, and returns the
    /// completion record.
    pub fn complete(&mut self, index: usize, now: Layers) -> CompletedQuery {
        let (pending, start, shard) = &self.dispatched[index];
        self.inflight -= 1;
        self.shard_inflight[*shard] -= 1;
        let record = CompletedQuery {
            id: pending.id,
            arrival: pending.arrival,
            start: *start,
            finish: now,
            shard: *shard,
        };
        self.histogram.record(record.response_latency());
        record
    }

    /// Acknowledges a [`ReplicaEvent::Poll`] firing at instant `now`,
    /// clearing the pending-poll latch so [`Replica::pump`] may schedule
    /// the next one.
    pub fn ack_poll(&mut self, now: Layers) {
        if self.poll_at == Some(now.get()) {
            self.poll_at = None;
        }
    }

    /// Runs the dispatcher at instant `now`: drains the shard queues in
    /// strict FIFO round-robin order as far as capacity and the admission
    /// interval allow, asking `schedule` to enqueue a
    /// [`ReplicaEvent::Completion`] per dispatch (and at most one
    /// [`ReplicaEvent::Poll`] when blocked on the interval). Returns the
    /// dispatch-order index range of the newly dispatched queries so the
    /// driver can annotate them (the fleet stamps memory epochs here).
    ///
    /// # Panics
    ///
    /// Panics if `policy` tries to admit earlier than the binding
    /// constraint (admission policies may only delay).
    pub fn pump<P: AdmissionPolicy + ?Sized>(
        &mut self,
        now: Layers,
        policy: &mut P,
        mut schedule: impl FnMut(Layers, ReplicaEvent),
    ) -> std::ops::Range<usize> {
        let first_new = self.dispatched.len();
        loop {
            let next_index = self.dispatched.len();
            let shard = self.next_seq % self.shards;
            if self.stalled[shard] {
                // An injected stall at the round-robin head: strict FIFO
                // blocks the whole dispatcher until the driver thaws the
                // shard and re-pumps.
                break;
            }
            let Some(head) = self.shard_queues[shard].front() else {
                // Strict FIFO: the next accepted query has not arrived.
                break;
            };
            if self.inflight >= self.aggregate_cap
                || self.shard_inflight[shard] >= self.shard_parallelism
            {
                // Blocked on capacity: a pending Completion event will
                // re-run the dispatcher at exactly the release instant.
                break;
            }
            let mut earliest = head.arrival;
            if let Some(last) = self.last_dispatch {
                earliest = earliest.max(last + self.stagger);
            }
            // The event instant is itself a constraint: a capacity slot
            // freed by the completion that triggered this pump cannot be
            // reused retroactively, so a capacity-blocked query starts
            // exactly at the release instant — the `finishes[k − p]` term
            // of the analytic recurrence.
            earliest = earliest.max(now);
            let request = QueryRequest {
                id: head.id,
                arrival: head.arrival,
            };
            let start = policy.admission_time(&request, earliest);
            assert!(
                start >= earliest,
                "admission policy may only delay: {} < {}",
                start.get(),
                earliest.get()
            );
            if head.deadline.is_some_and(|deadline| start > deadline) {
                // The earliest admissible start already overruns the
                // deadline: the request can never dispatch in time, so it
                // expires now instead of waiting unboundedly. It consumes
                // its round-robin slot but leaves no dispatch record.
                let pending = self.shard_queues[shard].pop_front().expect("head exists");
                self.pending_total -= 1;
                self.next_seq += 1;
                schedule(now, ReplicaEvent::Expired { tag: pending.tag });
                continue;
            }
            if start > now {
                // Blocked on the admission interval (or a delaying
                // policy): wake the dispatcher at the boundary.
                if self.poll_at != Some(start.get()) {
                    schedule(start, ReplicaEvent::Poll);
                    self.poll_at = Some(start.get());
                }
                break;
            }
            let pending = self.shard_queues[shard].pop_front().expect("head exists");
            self.pending_total -= 1;
            self.next_seq += 1;
            self.last_dispatch = Some(start);
            self.inflight += 1;
            self.shard_inflight[shard] += 1;
            self.per_shard_dispatches[shard] += 1;
            schedule(
                start + self.latency,
                ReplicaEvent::Completion { index: next_index },
            );
            self.dispatched.push((pending, start, shard));
        }
        first_new..self.dispatched.len()
    }

    /// Consumes the replica, returning the dispatched addresses in
    /// dispatch order — the batch the driver executes through the
    /// backend's compiled-plan hot path.
    #[must_use]
    pub fn into_addresses(self) -> Vec<AddressState> {
        self.dispatched
            .into_iter()
            .map(|(pending, _, _)| pending.address)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_sched::FifoAdmission;

    fn classical(width: u32, address: u64) -> AddressState {
        AddressState::classical(width, address).unwrap()
    }

    #[test]
    fn round_robin_offer_and_strict_fifo_pump() {
        let mut r = Replica::new(2, 4, Layers::new(4.0), Layers::new(10.0), 8, None);
        for id in 0..4 {
            assert!(r.offer(
                id,
                id,
                TenantId::DEFAULT,
                Layers::ZERO,
                None,
                classical(4, id as u64)
            ));
        }
        let mut events = Vec::new();
        let range = r.pump(Layers::ZERO, &mut FifoAdmission, |t, e| events.push((t, e)));
        // One immediate dispatch; the second blocks on the interval.
        assert_eq!(range, 0..1);
        assert_eq!(r.queued(), 3);
        assert_eq!(r.in_flight(), 1);
        assert!(events.contains(&(Layers::new(10.0), ReplicaEvent::Completion { index: 0 })));
        assert!(events.contains(&(Layers::new(4.0), ReplicaEvent::Poll)));
    }

    #[test]
    fn poll_latch_deduplicates_wakeups() {
        let mut r = Replica::new(1, 4, Layers::new(4.0), Layers::new(10.0), 4, None);
        for id in 0..3 {
            r.offer(
                id,
                id,
                TenantId::DEFAULT,
                Layers::ZERO,
                None,
                classical(4, 0),
            );
        }
        let mut polls = 0;
        r.pump(Layers::ZERO, &mut FifoAdmission, |_, e| {
            if e == ReplicaEvent::Poll {
                polls += 1;
            }
        });
        r.pump(Layers::new(1.0), &mut FifoAdmission, |_, e| {
            if e == ReplicaEvent::Poll {
                polls += 1;
            }
        });
        assert_eq!(polls, 1, "a pending poll is never re-scheduled");
        // The poll fires: the latch clears and the next dispatch happens.
        r.ack_poll(Layers::new(4.0));
        let range = r.pump(Layers::new(4.0), &mut FifoAdmission, |_, _| {});
        assert_eq!(range, 1..2);
    }

    #[test]
    fn bounded_queue_refuses_offers_when_full() {
        let mut r = Replica::new(1, 1, Layers::new(4.0), Layers::new(10.0), 1, Some(2));
        assert!(r.offer(0, 0, TenantId::DEFAULT, Layers::ZERO, None, classical(4, 0)));
        assert!(r.offer(1, 1, TenantId::DEFAULT, Layers::ZERO, None, classical(4, 1)));
        assert!(!r.has_queue_room());
        assert!(!r.offer(2, 2, TenantId::DEFAULT, Layers::ZERO, None, classical(4, 2)));
        assert_eq!(r.queued(), 2);
    }

    #[test]
    fn completion_frees_slots_and_records_latency() {
        let mut r = Replica::new(1, 1, Layers::new(4.0), Layers::new(10.0), 1, None);
        r.offer(7, 7, TenantId(3), Layers::new(1.0), None, classical(4, 5));
        r.pump(Layers::new(1.0), &mut FifoAdmission, |_, _| {});
        assert_eq!(r.load(), 1);
        let rec = r.complete(0, Layers::new(11.0));
        assert_eq!(rec.id, 7);
        assert_eq!(rec.response_latency(), Layers::new(10.0));
        assert_eq!(r.tenant_of(0), TenantId(3));
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.histogram().count(), 1);
    }

    #[test]
    fn expired_deadline_skips_dispatch_but_keeps_round_robin_aligned() {
        // One pipeline slot, 10-layer queries: the second offer cannot
        // start before t = 10, past its deadline of 5 — it expires and
        // the third offer (same shard, deadline met) dispatches next.
        let mut r = Replica::new(1, 1, Layers::new(4.0), Layers::new(10.0), 1, None);
        r.offer(
            0,
            100,
            TenantId::DEFAULT,
            Layers::ZERO,
            None,
            classical(4, 0),
        );
        r.offer(
            1,
            101,
            TenantId::DEFAULT,
            Layers::ZERO,
            Some(Layers::new(5.0)),
            classical(4, 1),
        );
        r.offer(
            2,
            102,
            TenantId::DEFAULT,
            Layers::ZERO,
            None,
            classical(4, 2),
        );
        r.pump(Layers::ZERO, &mut FifoAdmission, |_, _| {});
        r.complete(0, Layers::new(10.0));
        let mut events = Vec::new();
        let range = r.pump(Layers::new(10.0), &mut FifoAdmission, |t, e| {
            events.push((t, e));
        });
        assert!(events.contains(&(Layers::new(10.0), ReplicaEvent::Expired { tag: 101 })));
        assert_eq!(range, 1..2, "the survivor takes the next dispatch index");
        assert_eq!(r.tag_of(1), 102);
        assert_eq!(r.queued(), 0);
    }

    #[test]
    fn stalled_shard_blocks_the_strict_fifo_dispatcher() {
        let mut r = Replica::new(2, 4, Layers::new(4.0), Layers::new(10.0), 8, None);
        for id in 0..4 {
            r.offer(
                id,
                id,
                TenantId::DEFAULT,
                Layers::ZERO,
                None,
                classical(4, id as u64),
            );
        }
        r.set_shard_stall(0, true);
        let range = r.pump(Layers::ZERO, &mut FifoAdmission, |_, _| {});
        assert_eq!(range, 0..0, "head shard stalled: nothing dispatches");
        r.set_shard_stall(0, false);
        let range = r.pump(Layers::ZERO, &mut FifoAdmission, |_, _| {});
        assert_eq!(range, 0..1, "thawed: dispatch resumes in FIFO order");
    }

    #[test]
    fn fail_drains_queued_tags_in_accepted_order_and_zeroes_in_flight() {
        let mut r = Replica::new(2, 4, Layers::new(4.0), Layers::new(10.0), 8, None);
        for id in 0..5 {
            r.offer(
                id,
                50 + id,
                TenantId::DEFAULT,
                Layers::ZERO,
                None,
                classical(4, id as u64),
            );
        }
        r.pump(Layers::ZERO, &mut FifoAdmission, |_, _| {});
        assert_eq!(r.in_flight(), 1);
        let stranded = r.fail();
        assert_eq!(
            stranded,
            vec![51, 52, 53, 54],
            "queued tags, accepted order"
        );
        assert_eq!(r.queued(), 0);
        assert_eq!(r.in_flight(), 0);
        // The replica can rejoin: new offers dispatch with aligned
        // round-robin and fresh dispatch indices.
        r.offer(
            9,
            59,
            TenantId::DEFAULT,
            Layers::new(20.0),
            None,
            classical(4, 9),
        );
        let range = r.pump(Layers::new(20.0), &mut FifoAdmission, |_, _| {});
        assert_eq!(range, 1..2);
        assert_eq!(r.tag_of(1), 59);
    }
}
