//! The online QRAM service of §5: an event-driven serving loop over a
//! sharded backend.
//!
//! [`QramService`] admits an open-loop stream of [`ServiceRequest`]s onto
//! a [`ShardedQram`] through a pluggable [`AdmissionPolicy`]:
//!
//! * Accepted requests enter **per-shard round-robin dispatch queues**
//!   (the `j`-th accepted request queues at shard `j mod K`, matching
//!   [`ShardedQram::dispatch_shard`]).
//! * A single dispatcher drains the queues in FIFO order, spacing
//!   admissions by the divided interval `I_shard / K` and bounding each
//!   shard to its `P_shard` pipeline slots — so at most `K · P_shard`
//!   queries are in flight in aggregate, and **backpressure** propagates
//!   to an optional bounded arrival queue that sheds load when full.
//! * Dispatched queries execute through
//!   [`QramModel::execute_queries`] — the compiled-plan / memoized batch
//!   hot path — and per-query response latency (arrival → completion) is
//!   recorded into a log-bucketed [`LatencyHistogram`].
//!
//! The reactor's timings are not merely *similar* to the analytic
//! schedulers of `qram-sched`: with the FIFO policy they are **bit-equal**
//! to [`OnlineFifoScheduler`] on the equivalent
//! [`QramServer::for_model`] server (property-tested in
//! `tests/serving.rs`), because both commit the same admission recurrence
//! — the reactor merely discovers each binding constraint as an event
//! instead of a `max(..)` term. The per-shard admission interval `I_shard`
//! is enforced implicitly: `K` global admissions spaced `I_shard / K`
//! apart return to the same shard exactly `I_shard` later.
//!
//! [`OnlineFifoScheduler`]: qram_sched::OnlineFifoScheduler

use qram_core::{ExecError, QramModel, ShardedQram};
use qram_metrics::{LatencyHistogram, Layers, QueryRate, TimingModel};
use qram_sched::{AdmissionPolicy, FifoAdmission, QramServer, QueryRequest, Schedule, TenantId};
use qsim::branch::{AddressState, ClassicalMemory, QueryOutcome};

use crate::reactor::EventQueue;
use crate::replica::{Replica, ReplicaEvent};

pub use crate::replica::CompletedQuery;

/// A user query arriving at the service: an address superposition plus its
/// arrival instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Caller-chosen request identifier (reported back in the
    /// [`ServiceReport`]; need not be unique).
    pub id: usize,
    /// Arrival instant in virtual layer time.
    pub arrival: Layers,
    /// The queried address superposition.
    pub address: AddressState,
}

/// Configuration of the serving loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Bound on requests waiting in the dispatch queues (dispatched
    /// queries do not count). Arrivals beyond it are shed and reported in
    /// [`ServiceReport::rejected`]. `None` queues without bound.
    pub queue_capacity: Option<usize>,
}

/// The outcome of one serving run.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    timing: TimingModel,
    completed: Vec<CompletedQuery>,
    outcomes: Vec<QueryOutcome>,
    rejected: Vec<usize>,
    per_shard_dispatches: Vec<u64>,
    latency: LatencyHistogram,
}

impl ServiceReport {
    /// Served queries in dispatch order.
    #[must_use]
    pub fn completed(&self) -> &[CompletedQuery] {
        &self.completed
    }

    /// Query outcomes aligned with [`Self::completed`].
    #[must_use]
    pub fn outcomes(&self) -> &[QueryOutcome] {
        &self.outcomes
    }

    /// Identifiers of requests shed at the bounded arrival queue, in
    /// arrival order.
    #[must_use]
    pub fn rejected(&self) -> &[usize] {
        &self.rejected
    }

    /// Queries dispatched per shard queue — round-robin fairness means
    /// these never differ by more than one.
    #[must_use]
    pub fn per_shard_dispatches(&self) -> &[u64] {
        &self.per_shard_dispatches
    }

    /// The log-bucketed response-latency histogram (arrival → completion,
    /// in layers).
    #[must_use]
    pub fn latency_histogram(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// A response latency quantile in the timing model's wall-clock
    /// microseconds.
    ///
    /// # Panics
    ///
    /// Panics if nothing completed or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn latency_micros(&self, q: f64) -> f64 {
        self.timing.layers_to_micros(self.latency.quantile(q))
    }

    /// Completion instant of the last served query.
    #[must_use]
    pub fn makespan(&self) -> Layers {
        self.completed
            .iter()
            .map(|c| c.finish)
            .fold(Layers::ZERO, Layers::max)
    }

    /// The observation window of the run: first arrival → last completion
    /// (a trace starting deep into virtual time is not billed for the
    /// idle prefix). [`Layers::ZERO`] when nothing completed.
    #[must_use]
    pub fn window(&self) -> Layers {
        let Some(first_arrival) = self.completed.iter().map(|c| c.arrival).reduce(Layers::min)
        else {
            return Layers::ZERO;
        };
        self.makespan() - first_arrival
    }

    /// Served queries per layer over the run (first arrival → makespan);
    /// `0.0` when nothing completed (never a division by zero).
    #[must_use]
    pub fn queries_per_layer(&self) -> f64 {
        if self.completed.is_empty() {
            return 0.0;
        }
        self.completed.len() as f64 / self.window().get()
    }

    /// Served queries per second under the service's timing model, over
    /// the same first-arrival → makespan window; [`QueryRate::ZERO`] when
    /// nothing completed (never `NaN`).
    #[must_use]
    pub fn query_rate(&self) -> QueryRate {
        if self.completed.is_empty() {
            return QueryRate::ZERO;
        }
        QueryRate::new(self.completed.len() as f64 / self.timing.layers_to_seconds(self.window()))
    }

    /// The realized timings as a `qram-sched` [`Schedule`], for comparison
    /// against the analytic schedulers.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        Schedule::from_entries(
            self.completed
                .iter()
                .map(|c| qram_sched::ScheduledQuery {
                    request: QueryRequest {
                        id: c.id,
                        arrival: c.arrival,
                    },
                    start: c.start,
                    finish: c.finish,
                })
                .collect(),
        )
    }
}

/// Reactor events, in virtual layer time.
#[derive(Debug)]
enum Event {
    /// A request reaches the service.
    Arrival(ServiceRequest),
    /// The `index`-th dispatched query leaves its shard pipeline.
    Completion { index: usize },
    /// Wake the dispatcher at an admission-interval boundary.
    Poll,
}

/// The §5 quantum-data-center service: an event-driven serving loop over a
/// [`ShardedQram`] under a pluggable admission policy.
///
/// # Examples
///
/// ```
/// use qram_core::ShardedQram;
/// use qram_metrics::{Capacity, Layers, TimingModel};
/// use qram_serve::{QramService, ServiceConfig, ServiceRequest};
/// use qsim::branch::{AddressState, ClassicalMemory};
///
/// let qram = ShardedQram::fat_tree(Capacity::new(16)?, 2);
/// let mut service = QramService::fifo(qram, TimingModel::paper_default());
/// let memory = ClassicalMemory::from_words(1, &[1; 16])?;
/// let requests: Vec<ServiceRequest> = (0..6)
///     .map(|id| ServiceRequest {
///         id,
///         arrival: Layers::ZERO,
///         address: AddressState::classical(4, id as u64).unwrap(),
///     })
///     .collect();
/// let report = service.serve(&memory, requests)?;
/// assert_eq!(report.completed().len(), 6);
/// // Saturated arrivals dispatch at the divided interval I_shard / K.
/// let starts: Vec<f64> = report.completed().iter().map(|c| c.start.get()).collect();
/// assert_eq!(starts[1] - starts[0], 8.25 / 2.0);
/// // Every branch reads the stored word.
/// assert_eq!(report.outcomes()[3].data_for(3), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct QramService<M: QramModel, P: AdmissionPolicy = FifoAdmission> {
    qram: ShardedQram<M>,
    timing: TimingModel,
    policy: P,
    config: ServiceConfig,
}

impl<M: QramModel> QramService<M, FifoAdmission> {
    /// A FIFO service with an unbounded arrival queue.
    #[must_use]
    pub fn fifo(qram: ShardedQram<M>, timing: TimingModel) -> Self {
        QramService::new(qram, timing, FifoAdmission, ServiceConfig::default())
    }
}

impl<M: QramModel, P: AdmissionPolicy> QramService<M, P> {
    /// A service over `qram` with an explicit policy and configuration.
    #[must_use]
    pub fn new(
        qram: ShardedQram<M>,
        timing: TimingModel,
        policy: P,
        config: ServiceConfig,
    ) -> Self {
        QramService {
            qram,
            timing,
            policy,
            config,
        }
    }

    /// The backend being served.
    #[must_use]
    pub fn qram(&self) -> &ShardedQram<M> {
        &self.qram
    }

    /// The equivalent pipelined server: parallelism `K · P_shard`,
    /// admission interval `I_shard / K`, monolithic single-query latency.
    #[must_use]
    pub fn equivalent_server(&self) -> QramServer {
        QramServer::for_model(&self.qram, &self.timing)
    }

    /// Serves a batch of requests to completion: runs the discrete-event
    /// loop over every arrival, then executes the dispatched queries
    /// against `memory` through the backend's batch hot path.
    ///
    /// Requests may be supplied in any order (the reactor orders them by
    /// arrival instant, FIFO among ties).
    ///
    /// # Errors
    ///
    /// Returns an error if query execution fails (e.g. a corrupted
    /// instruction stream).
    ///
    /// # Panics
    ///
    /// Panics if `memory` or any request's address width mismatches the
    /// QRAM capacity.
    pub fn serve(
        &mut self,
        memory: &ClassicalMemory,
        requests: impl IntoIterator<Item = ServiceRequest>,
    ) -> Result<ServiceReport, ExecError> {
        let server = self.equivalent_server();
        let aggregate_cap = self
            .policy
            .in_flight_cap(&server)
            .clamp(1, server.parallelism());
        let address_width = self.qram.capacity().address_width();
        let mut replica = Replica::new(
            self.qram.num_shards() as usize,
            self.qram.shard_parallelism(),
            server.interval(),
            server.latency(),
            aggregate_cap,
            self.config.queue_capacity,
        );

        // Arrivals are all known up front, so they live in a sorted list
        // merged against the event heap instead of inside it: the heap then
        // only ever holds the in-flight completions plus at most one poll,
        // which keeps every push/pop O(log in-flight) rather than
        // O(log total-requests). The stable sort preserves supply order
        // among same-instant arrivals — the same FIFO tie-break the heap's
        // sequence numbers used to provide.
        let mut arrivals: Vec<ServiceRequest> = requests
            .into_iter()
            .inspect(|r| {
                assert_eq!(
                    r.address.address_width(),
                    address_width,
                    "request address width must match QRAM capacity"
                );
            })
            .collect();
        arrivals.sort_by(|a, b| {
            a.arrival
                .get()
                .partial_cmp(&b.arrival.get())
                .expect("event times are finite")
        });
        let total_requests = arrivals.len();
        let mut arrivals = arrivals.into_iter().peekable();
        let mut events: EventQueue<Event> = EventQueue::new();
        let mut completed: Vec<CompletedQuery> = Vec::with_capacity(total_requests);
        let mut rejected: Vec<usize> = Vec::new();

        loop {
            // An arrival at the same instant as a heap event goes first:
            // arrivals were pushed before any completion or poll under the
            // old single-heap scheme, so the FIFO tie-break favoured them.
            let arrival_is_next = match (arrivals.peek(), events.peek_time()) {
                (Some(pending), Some(next)) => pending.arrival <= next,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let (now, event) = if arrival_is_next {
                let pending = arrivals.next().expect("peeked arrival exists");
                (pending.arrival, Event::Arrival(pending))
            } else if let Some(popped) = events.pop() {
                popped
            } else {
                break;
            };
            match event {
                Event::Arrival(request) => {
                    if !replica.offer(
                        request.id,
                        request.id,
                        TenantId::DEFAULT,
                        request.arrival,
                        None,
                        request.address,
                    ) {
                        rejected.push(request.id);
                    }
                }
                Event::Completion { index } => {
                    completed.push(replica.complete(index, now));
                }
                Event::Poll => replica.ack_poll(now),
            }
            // Dispatcher: drain the shard queues in strict FIFO round-robin
            // order as far as capacity and the admission interval allow.
            let _ = replica.pump(now, &mut self.policy, |time, ev| {
                events.push(
                    time,
                    match ev {
                        ReplicaEvent::Completion { index } => Event::Completion { index },
                        ReplicaEvent::Poll => Event::Poll,
                        ReplicaEvent::Expired { .. } => {
                            unreachable!("the service offers no deadlines")
                        }
                    },
                );
            });
        }
        debug_assert_eq!(replica.queued(), 0, "every accepted request dispatches");
        debug_assert_eq!(completed.len(), replica.dispatch_count());

        let latency_hist = replica.histogram().clone();
        let per_shard_dispatches = replica.per_shard_dispatches().to_vec();

        // Execute the dispatched queries in admission order through the
        // backend's batch hot path (compiled plans + epoch-keyed
        // memoization), recombining per-query outcomes.
        let addresses: Vec<AddressState> = replica.into_addresses();
        let outcomes = self.qram.execute_queries(memory, &addresses, &[])?;

        Ok(ServiceReport {
            timing: self.timing,
            completed,
            outcomes,
            rejected,
            per_shard_dispatches,
            latency: latency_hist,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qram_core::FatTreeQram;
    use qram_metrics::Capacity;
    use qram_sched::{OnlineFifoScheduler, Scheduler as _};

    fn cap(n: u64) -> Capacity {
        Capacity::new(n).unwrap()
    }

    fn classical_requests(arrivals: &[f64], width: u32, modulus: u64) -> Vec<ServiceRequest> {
        arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| ServiceRequest {
                id,
                arrival: Layers::new(a),
                address: AddressState::classical(width, id as u64 % modulus).unwrap(),
            })
            .collect()
    }

    fn checkerboard(n: u64) -> ClassicalMemory {
        let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
        ClassicalMemory::from_words(1, &cells).unwrap()
    }

    #[test]
    fn single_shard_service_matches_online_fifo() {
        let qram = ShardedQram::fat_tree(cap(64), 1);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let arrivals: Vec<f64> = (0..20).map(|i| (i as f64 * 2.7) % 31.0).collect();
        let mut sorted = arrivals.clone();
        sorted.sort_by(f64::total_cmp);
        let requests = classical_requests(&sorted, 6, 64);
        let report = service.serve(&checkerboard(64), requests.clone()).unwrap();

        let mut reference = OnlineFifoScheduler::new(service.equivalent_server());
        for r in &requests {
            reference
                .admit(QueryRequest {
                    id: r.id,
                    arrival: r.arrival,
                })
                .unwrap();
        }
        assert_eq!(report.schedule().entries(), reference.finish().entries());
    }

    #[test]
    fn round_robin_assignment_fills_queues_evenly() {
        let qram = ShardedQram::fat_tree(cap(256), 4);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let requests = classical_requests(&[0.0; 22], 8, 256);
        let report = service.serve(&checkerboard(256), requests).unwrap();
        assert_eq!(report.per_shard_dispatches(), &[6, 6, 5, 5]);
        for (i, c) in report.completed().iter().enumerate() {
            assert_eq!(c.id, i, "strict FIFO dispatch order");
            assert_eq!(c.shard, i % 4, "round-robin queue assignment");
        }
    }

    #[test]
    fn saturated_dispatches_space_at_divided_interval() {
        let qram = ShardedQram::fat_tree(cap(4096), 4);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let requests = classical_requests(&[0.0; 16], 12, 4096);
        let report = service.serve(&checkerboard(4096), requests).unwrap();
        let starts: Vec<f64> = report.completed().iter().map(|c| c.start.get()).collect();
        for w in starts.windows(2) {
            assert!((w[1] - w[0] - 8.25 / 4.0).abs() < 1e-9, "{starts:?}");
        }
    }

    #[test]
    fn outcomes_match_ideal_semantics() {
        let qram = ShardedQram::fat_tree(cap(64), 4);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let memory = checkerboard(64);
        let requests: Vec<ServiceRequest> = (0..8)
            .map(|id| ServiceRequest {
                id,
                arrival: Layers::new(id as f64),
                address: AddressState::uniform(6, &[id as u64, id as u64 + 17, id as u64 + 40])
                    .unwrap(),
            })
            .collect();
        let report = service.serve(&memory, requests.clone()).unwrap();
        for (c, out) in report.completed().iter().zip(report.outcomes()) {
            let ideal = memory.ideal_query(&requests[c.id].address);
            assert!((out.fidelity(&ideal) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bounded_queue_sheds_excess_load() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let timing = TimingModel::paper_default();
        let mut service = QramService::new(
            qram,
            timing,
            FifoAdmission,
            ServiceConfig {
                queue_capacity: Some(4),
            },
        );
        // A burst far beyond queue + pipeline capacity at t = 0: the first
        // request dispatches immediately, four more fit in the queue, and
        // the rest are shed (the queue only drains at the admission
        // interval, long after the instantaneous burst has passed).
        let requests = classical_requests(&[0.0; 40], 6, 64);
        let report = service.serve(&checkerboard(64), requests).unwrap();
        assert_eq!(report.completed().len(), 5);
        assert_eq!(report.rejected().len(), 35);
        assert_eq!(report.rejected()[0], 5);
        let ids: Vec<usize> = report.completed().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn unsorted_submissions_are_ordered_by_arrival() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let mut requests = classical_requests(&[30.0, 0.0, 60.0, 15.0], 6, 64);
        requests.swap(0, 2);
        let report = service.serve(&checkerboard(64), requests).unwrap();
        let ids: Vec<usize> = report.completed().iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }

    #[test]
    fn report_throughput_and_latency_metrics() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let timing = TimingModel::paper_default();
        let mut service = QramService::fifo(qram, timing);
        let requests = classical_requests(&[0.0; 10], 6, 64);
        let report = service.serve(&checkerboard(64), requests).unwrap();
        assert_eq!(report.latency_histogram().count(), 10);
        assert!(report.queries_per_layer() > 0.0);
        assert!(report.query_rate().get() > 0.0);
        assert!(report.latency_micros(0.5) <= report.latency_micros(0.99));
        let mono_latency = FatTreeQram::new(cap(64))
            .single_query_latency(&timing)
            .get();
        // The fastest query finishes in exactly one monolithic latency.
        assert!((report.latency_histogram().min().get() - mono_latency).abs() < 1e-9);
    }

    #[test]
    fn throughput_window_excludes_idle_prefix() {
        // A trace starting deep into virtual time reports the same
        // sustained rate as the identical trace shifted to t = 0.
        let timing = TimingModel::paper_default();
        let run = |offset: f64| {
            let qram = ShardedQram::fat_tree(cap(64), 2);
            let mut service = QramService::fifo(qram, timing);
            let arrivals: Vec<f64> = (0..10).map(|i| offset + 3.0 * i as f64).collect();
            let requests = classical_requests(&arrivals, 6, 64);
            service.serve(&checkerboard(64), requests).unwrap()
        };
        let at_zero = run(0.0);
        let delayed = run(10_000.0);
        assert!((delayed.window() - at_zero.window()).get().abs() < 1e-9);
        assert!((delayed.queries_per_layer() - at_zero.queries_per_layer()).abs() < 1e-12);
        assert!((delayed.query_rate().get() - at_zero.query_rate().get()).abs() < 1e-6);
    }

    #[test]
    fn empty_run_reports_zero_rates_without_panicking() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let mut service = QramService::fifo(qram, TimingModel::paper_default());
        let report = service.serve(&checkerboard(64), Vec::new()).unwrap();
        assert_eq!(report.window(), Layers::ZERO);
        assert_eq!(report.queries_per_layer(), 0.0);
        assert_eq!(report.query_rate(), QueryRate::ZERO);
        assert_eq!(report.latency_histogram().p99(), None);
    }

    #[test]
    #[should_panic(expected = "address width")]
    fn mismatched_address_width_rejected() {
        let qram = ShardedQram::fat_tree(cap(64), 2);
        let mut service = QramService::fifo(qram, TimingModel::paper_default());
        let bad = vec![ServiceRequest {
            id: 0,
            arrival: Layers::ZERO,
            address: AddressState::classical(3, 1).unwrap(),
        }];
        let _ = service.serve(&checkerboard(64), bad);
    }
}
