//! Branch-based QRAM query simulation.
//!
//! A bucket-brigade query over a superposition of `B` addresses entangles
//! only the routers along the `B` active root-to-leaf paths; for each fixed
//! address, every router is in a definite (classical) state. The joint state
//! during a query therefore decomposes into `B` *branches*, each evolving
//! classically under the routing instructions. This module represents
//! address superpositions and query outcomes in that branch decomposition,
//! which is exact and costs `O(B · log N)` instead of `O(2^N)`.
//!
//! The instruction-level executor that drives branches through a schedule
//! lives in `qram-core`; this module provides the state types and the
//! *reference semantics* ([`ClassicalMemory::ideal_query`], Eq. 1 of the
//! paper) that executions are checked against.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::Complex;

/// A superposition of memory addresses: the input register
/// `Σᵢ αᵢ |i⟩` of a quantum query.
///
/// # Examples
///
/// ```
/// use qsim::branch::AddressState;
///
/// let addr = AddressState::uniform(3, &[0, 5, 7])?;
/// assert_eq!(addr.num_branches(), 3);
/// assert!((addr.probability_of(5) - 1.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), qsim::branch::BranchError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AddressState {
    address_width: u32,
    terms: Vec<(Complex, u64)>,
}

/// Errors constructing branch states.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchError {
    /// An address does not fit in the address width.
    AddressOutOfRange {
        /// The offending address.
        address: u64,
        /// The register width in bits.
        address_width: u32,
    },
    /// The same address appeared twice.
    DuplicateAddress(u64),
    /// The superposition had zero norm (no terms, or all-zero amplitudes).
    ZeroNorm,
}

impl std::fmt::Display for BranchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BranchError::AddressOutOfRange {
                address,
                address_width,
            } => write!(f, "address {address} does not fit in {address_width} bits"),
            BranchError::DuplicateAddress(a) => write!(f, "duplicate address {a}"),
            BranchError::ZeroNorm => write!(f, "superposition has zero norm"),
        }
    }
}

impl std::error::Error for BranchError {}

impl AddressState {
    /// Builds a normalized superposition from `(amplitude, address)` terms.
    ///
    /// # Errors
    ///
    /// Returns an error if any address repeats or exceeds the width, or if
    /// the total norm is zero.
    pub fn new(
        address_width: u32,
        terms: impl IntoIterator<Item = (Complex, u64)>,
    ) -> Result<Self, BranchError> {
        let mut seen = BTreeMap::new();
        let mut collected = Vec::new();
        let limit = 1u64.checked_shl(address_width).unwrap_or(u64::MAX);
        for (amp, addr) in terms {
            if addr >= limit {
                return Err(BranchError::AddressOutOfRange {
                    address: addr,
                    address_width,
                });
            }
            if seen.insert(addr, ()).is_some() {
                return Err(BranchError::DuplicateAddress(addr));
            }
            if amp.norm_sqr() > 0.0 {
                collected.push((amp, addr));
            }
        }
        let norm: f64 = collected
            .iter()
            .map(|(a, _)| a.norm_sqr())
            .sum::<f64>()
            .sqrt();
        if norm <= 1e-300 {
            return Err(BranchError::ZeroNorm);
        }
        for (a, _) in &mut collected {
            *a = *a / norm;
        }
        collected.sort_by_key(|&(_, addr)| addr);
        Ok(AddressState {
            address_width,
            terms: collected,
        })
    }

    /// A single classical address `|address⟩`.
    ///
    /// # Errors
    ///
    /// Returns an error if the address exceeds the width.
    pub fn classical(address_width: u32, address: u64) -> Result<Self, BranchError> {
        AddressState::new(address_width, [(Complex::ONE, address)])
    }

    /// A uniform superposition over the given addresses.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicates, out-of-range addresses, or an empty
    /// list.
    pub fn uniform(address_width: u32, addresses: &[u64]) -> Result<Self, BranchError> {
        AddressState::new(address_width, addresses.iter().map(|&a| (Complex::ONE, a)))
    }

    /// The uniform superposition over *all* `2ⁿ` addresses (the state
    /// produced by Hadamards on the address register).
    ///
    /// # Panics
    ///
    /// Panics if `address_width > 20` (to bound memory).
    #[must_use]
    pub fn full_superposition(address_width: u32) -> Self {
        assert!(
            address_width <= 20,
            "full superposition limited to 20 address bits"
        );
        let all: Vec<u64> = (0..(1u64 << address_width)).collect();
        AddressState::uniform(address_width, &all).expect("valid by construction")
    }

    /// The address register width in bits.
    #[must_use]
    #[inline]
    pub fn address_width(&self) -> u32 {
        self.address_width
    }

    /// Number of branches (distinct addresses with non-zero amplitude).
    #[must_use]
    #[inline]
    pub fn num_branches(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(amplitude, address)` terms in address order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &(Complex, u64)> {
        self.terms.iter()
    }

    /// The `(amplitude, address)` terms in address order, as a slice —
    /// lets executors partition branches across worker threads without
    /// first collecting the iterator.
    #[must_use]
    pub fn terms(&self) -> &[(Complex, u64)] {
        &self.terms
    }

    /// Probability of measuring the given address.
    #[must_use]
    pub fn probability_of(&self, address: u64) -> f64 {
        self.terms
            .iter()
            .find(|&&(_, a)| a == address)
            .map_or(0.0, |(amp, _)| amp.norm_sqr())
    }
}

/// Backing storage of a [`QueryOutcome`]'s `(amplitude, address, data)`
/// terms: either owned per outcome (the single-query shape) or a range of
/// a term column shared across a whole batch (the columnar batch kernel
/// emits one flat column per memory epoch, so per-query outcomes cost one
/// reference-count bump instead of one heap allocation each).
#[derive(Debug, Clone)]
enum OutcomeTerms {
    Owned(Vec<(Complex, u64, u64)>),
    /// A lone term stored inline: the single-branch (classical) query
    /// shape that dominates serving batches pays neither a heap
    /// allocation nor a reference-count bump per outcome.
    Single((Complex, u64, u64)),
    Shared {
        column: Arc<[(Complex, u64, u64)]>,
        start: usize,
        end: usize,
    },
}

/// The outcome of a quantum query: the entangled address–bus state
/// `Σᵢ αᵢ |i⟩_A |xᵢ⟩_B` of Eq. (1).
///
/// Equality is semantic — two outcomes are equal when their register
/// widths and term sequences match, regardless of whether the terms are
/// owned or borrowed from a shared batch column.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    address_width: u32,
    bus_width: u32,
    terms: OutcomeTerms,
}

impl PartialEq for QueryOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.address_width == other.address_width
            && self.bus_width == other.bus_width
            && self.terms() == other.terms()
    }
}

impl QueryOutcome {
    /// Builds an outcome from `(amplitude, address, data)` terms. Intended
    /// for executors; terms are sorted by address and assumed normalized.
    ///
    /// # Panics
    ///
    /// Panics if any data value exceeds the bus width.
    #[must_use]
    pub fn from_terms(
        address_width: u32,
        bus_width: u32,
        mut terms: Vec<(Complex, u64, u64)>,
    ) -> Self {
        let limit = 1u64.checked_shl(bus_width).unwrap_or(u64::MAX);
        for &(_, _, data) in &terms {
            assert!(
                data < limit,
                "data value {data} does not fit in bus width {bus_width}"
            );
        }
        terms.sort_by_key(|&(_, addr, _)| addr);
        QueryOutcome {
            address_width,
            bus_width,
            terms: OutcomeTerms::Owned(terms),
        }
    }

    /// Builds a single-branch (classical) outcome from its lone
    /// `(amplitude, address, data)` term, stored inline — no heap
    /// allocation. The batch kernels use this for all-classical batches,
    /// where even a shared column would cost an allocation and a
    /// reference-count bump per batch.
    ///
    /// # Panics
    ///
    /// Panics if the data value exceeds the bus width.
    #[inline]
    #[must_use]
    pub fn from_term(address_width: u32, bus_width: u32, term: (Complex, u64, u64)) -> Self {
        assert!(
            term.2 < 1u64.checked_shl(bus_width).unwrap_or(u64::MAX),
            "data value {} does not fit in bus width {bus_width}",
            term.2
        );
        QueryOutcome {
            address_width,
            bus_width,
            terms: OutcomeTerms::Single(term),
        }
    }

    /// Builds an outcome as the `[start, end)` slice of a term column
    /// shared across a batch. The caller (a batch executor) must supply
    /// terms already sorted ascending by address with data fitting the bus
    /// width — both invariants hold by construction when the column is
    /// gathered from an [`AddressState`] (sorted) against a validated
    /// memory, and are `debug_assert`ed here to keep the hot path free of
    /// per-term work.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[inline]
    #[must_use]
    pub fn from_shared_column(
        address_width: u32,
        bus_width: u32,
        column: &Arc<[(Complex, u64, u64)]>,
        start: usize,
        end: usize,
    ) -> Self {
        assert!(
            start <= end && end <= column.len(),
            "term range {start}..{end} out of bounds for column of {}",
            column.len()
        );
        debug_assert!(
            column[start..end].windows(2).all(|w| w[0].1 <= w[1].1),
            "shared terms must be sorted by address"
        );
        debug_assert!(
            column[start..end]
                .iter()
                .all(|&(_, _, d)| d < 1u64.checked_shl(bus_width).unwrap_or(u64::MAX)),
            "shared term data must fit the bus width"
        );
        let terms = if end - start == 1 {
            OutcomeTerms::Single(column[start])
        } else {
            OutcomeTerms::Shared {
                column: Arc::clone(column),
                start,
                end,
            }
        };
        QueryOutcome {
            address_width,
            bus_width,
            terms,
        }
    }

    /// The terms as a slice, whichever representation backs them.
    #[inline]
    fn terms(&self) -> &[(Complex, u64, u64)] {
        match &self.terms {
            OutcomeTerms::Owned(terms) => terms,
            OutcomeTerms::Single(term) => std::slice::from_ref(term),
            OutcomeTerms::Shared { column, start, end } => &column[*start..*end],
        }
    }

    /// The address register width.
    #[must_use]
    #[inline]
    pub fn address_width(&self) -> u32 {
        self.address_width
    }

    /// The bus register width.
    #[must_use]
    #[inline]
    pub fn bus_width(&self) -> u32 {
        self.bus_width
    }

    /// Iterates over `(amplitude, address, data)` terms in address order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = &(Complex, u64, u64)> {
        self.terms().iter()
    }

    /// Number of branches.
    #[must_use]
    #[inline]
    pub fn num_branches(&self) -> usize {
        self.terms().len()
    }

    /// The data value returned for `address`, if that branch exists.
    #[must_use]
    pub fn data_for(&self, address: u64) -> Option<u64> {
        self.terms()
            .iter()
            .find(|&&(_, a, _)| a == address)
            .map(|&(_, _, d)| d)
    }

    /// Fidelity `|⟨self|other⟩|²` between two outcomes, treating each
    /// `(address, data)` pair as an orthogonal basis state.
    ///
    /// # Panics
    ///
    /// Panics if register widths differ.
    #[must_use]
    pub fn fidelity(&self, other: &QueryOutcome) -> f64 {
        assert_eq!(self.address_width, other.address_width);
        assert_eq!(self.bus_width, other.bus_width);
        let map: BTreeMap<(u64, u64), Complex> = self
            .terms()
            .iter()
            .map(|&(amp, a, d)| ((a, d), amp))
            .collect();
        let overlap: Complex = other
            .terms()
            .iter()
            .filter_map(|&(amp, a, d)| map.get(&(a, d)).map(|mine| mine.conj() * amp))
            .sum();
        overlap.norm_sqr()
    }
}

/// A classical memory of `N` cells, each holding a `bus_width`-bit word —
/// the data plane queried by the QRAM.
///
/// # Examples
///
/// ```
/// use qsim::branch::{AddressState, ClassicalMemory};
///
/// let mem = ClassicalMemory::from_words(1, &[1, 0, 1, 1])?;
/// let addr = AddressState::uniform(2, &[0, 3])?;
/// let out = mem.ideal_query(&addr);
/// assert_eq!(out.data_for(0), Some(1));
/// assert_eq!(out.data_for(3), Some(1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClassicalMemory {
    bus_width: u32,
    cells: Vec<u64>,
    /// Monotone write counter: bumped on every [`ClassicalMemory::write`],
    /// so `(write_epoch, address set)` is a sound memoization key for
    /// query outcomes — any write invalidates all cached outcomes.
    write_epoch: u64,
}

/// Semantic equality: two memories are equal when they hold the same words
/// on the same bus, regardless of how many writes produced them (the
/// [`ClassicalMemory::write_epoch`] bookkeeping is not observable data).
impl PartialEq for ClassicalMemory {
    fn eq(&self, other: &Self) -> bool {
        self.bus_width == other.bus_width && self.cells == other.cells
    }
}

/// Errors constructing a [`ClassicalMemory`].
#[derive(Debug, Clone, PartialEq)]
pub enum MemoryError {
    /// The number of cells is not a power of two ≥ 2.
    BadCellCount(usize),
    /// A word does not fit in the bus width.
    WordTooWide {
        /// Cell index.
        index: usize,
        /// The offending value.
        value: u64,
        /// Bus width in bits.
        bus_width: u32,
    },
    /// Bus width outside `1..=63`.
    BadBusWidth(u32),
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryError::BadCellCount(n) => {
                write!(f, "cell count {n} is not a power of two >= 2")
            }
            MemoryError::WordTooWide {
                index,
                value,
                bus_width,
            } => write!(
                f,
                "cell {index} value {value} does not fit in bus width {bus_width}"
            ),
            MemoryError::BadBusWidth(w) => write!(f, "bus width {w} outside 1..=63"),
        }
    }
}

impl std::error::Error for MemoryError {}

impl ClassicalMemory {
    /// Builds a memory from explicit words.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell count is not a power of two ≥ 2, the
    /// bus width is outside `1..=63`, or a word overflows the bus.
    pub fn from_words(bus_width: u32, words: &[u64]) -> Result<Self, MemoryError> {
        if !(1..=63).contains(&bus_width) {
            return Err(MemoryError::BadBusWidth(bus_width));
        }
        if words.len() < 2 || !words.len().is_power_of_two() {
            return Err(MemoryError::BadCellCount(words.len()));
        }
        let limit = 1u64 << bus_width;
        for (index, &value) in words.iter().enumerate() {
            if value >= limit {
                return Err(MemoryError::WordTooWide {
                    index,
                    value,
                    bus_width,
                });
            }
        }
        Ok(ClassicalMemory {
            bus_width,
            cells: words.to_vec(),
            write_epoch: 0,
        })
    }

    /// An all-zeros memory with `capacity` single-bit cells.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not a power of two ≥ 2.
    #[must_use]
    pub fn zeros(capacity: usize) -> Self {
        ClassicalMemory::from_words(1, &vec![0; capacity]).expect("zeros are valid")
    }

    /// Number of cells `N`.
    #[must_use]
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// The address width `log₂ N`.
    #[must_use]
    #[inline]
    pub fn address_width(&self) -> u32 {
        self.cells.len().trailing_zeros()
    }

    /// The bus width in bits.
    #[must_use]
    #[inline]
    pub fn bus_width(&self) -> u32 {
        self.bus_width
    }

    /// Reads a cell.
    ///
    /// # Panics
    ///
    /// Panics if `address` is out of range.
    #[must_use]
    #[inline]
    pub fn read(&self, address: u64) -> u64 {
        self.cells[usize::try_from(address).expect("address fits in usize")]
    }

    /// Writes a cell (classical memory update between queries) and bumps
    /// the [`Self::write_epoch`]. The epoch advances even when the written
    /// value equals the old one — conservative invalidation keeps the
    /// memoization key sound without a read-compare on the hot path.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range or the value overflows the bus.
    #[inline]
    pub fn write(&mut self, address: u64, value: u64) {
        assert!(
            value < (1u64 << self.bus_width),
            "value {value} does not fit in bus width {}",
            self.bus_width
        );
        self.cells[usize::try_from(address).expect("address fits in usize")] = value;
        self.write_epoch += 1;
    }

    /// The number of writes applied to this memory since construction
    /// (clones inherit the counter). Query outcomes are a pure function of
    /// `(write_epoch, address set)` for a given starting memory, which is
    /// what batch-level memoization keys on.
    #[must_use]
    #[inline]
    pub fn write_epoch(&self) -> u64 {
        self.write_epoch
    }

    /// All cells in address order.
    #[must_use]
    #[inline]
    pub fn cells(&self) -> &[u64] {
        &self.cells
    }

    /// The *reference semantics* of a quantum query, Eq. (1):
    /// `Σᵢ αᵢ|i⟩|0⟩ → Σᵢ αᵢ|i⟩|xᵢ⟩`. Instruction-level executions are
    /// validated against this outcome.
    ///
    /// # Panics
    ///
    /// Panics if the address state's width does not match the memory.
    #[must_use]
    pub fn ideal_query(&self, address: &AddressState) -> QueryOutcome {
        assert_eq!(
            address.address_width(),
            self.address_width(),
            "address width must match memory capacity"
        );
        let terms = address
            .iter()
            .map(|&(amp, addr)| (amp, addr, self.read(addr)))
            .collect();
        QueryOutcome::from_terms(self.address_width(), self.bus_width, terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_normalizes() {
        let s = AddressState::uniform(3, &[1, 2, 4, 6]).unwrap();
        assert_eq!(s.num_branches(), 4);
        for &(amp, _) in s.iter() {
            assert!((amp.norm_sqr() - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_address_rejected() {
        assert_eq!(
            AddressState::uniform(3, &[1, 1]),
            Err(BranchError::DuplicateAddress(1))
        );
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            AddressState::classical(2, 4),
            Err(BranchError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn zero_norm_rejected() {
        assert_eq!(
            AddressState::new(2, std::iter::empty()),
            Err(BranchError::ZeroNorm)
        );
        assert_eq!(
            AddressState::new(2, [(Complex::ZERO, 1)]),
            Err(BranchError::ZeroNorm)
        );
    }

    #[test]
    fn full_superposition_covers_all_addresses() {
        let s = AddressState::full_superposition(4);
        assert_eq!(s.num_branches(), 16);
        assert!((s.probability_of(9) - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_query_matches_memory() {
        let mem = ClassicalMemory::from_words(2, &[3, 0, 1, 2]).unwrap();
        let addr = AddressState::full_superposition(2);
        let out = mem.ideal_query(&addr);
        assert_eq!(out.data_for(0), Some(3));
        assert_eq!(out.data_for(1), Some(0));
        assert_eq!(out.data_for(2), Some(1));
        assert_eq!(out.data_for(3), Some(2));
        assert_eq!(out.bus_width(), 2);
        assert_eq!(out.address_width(), 2);
    }

    #[test]
    fn outcome_fidelity_of_identical_states_is_one() {
        let mem = ClassicalMemory::from_words(1, &[1, 0, 1, 0]).unwrap();
        let addr = AddressState::uniform(2, &[0, 2]).unwrap();
        let out = mem.ideal_query(&addr);
        assert!((out.fidelity(&out) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn outcome_fidelity_detects_wrong_data() {
        let mem = ClassicalMemory::from_words(1, &[1, 0]).unwrap();
        let addr = AddressState::uniform(1, &[0, 1]).unwrap();
        let good = mem.ideal_query(&addr);
        // Corrupt one branch's data: overlap halves, fidelity quarters.
        let bad = QueryOutcome::from_terms(
            1,
            1,
            good.iter()
                .map(|&(amp, a, d)| (amp, a, if a == 0 { 1 - d } else { d }))
                .collect(),
        );
        assert!((good.fidelity(&bad) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn memory_write_roundtrip() {
        let mut mem = ClassicalMemory::zeros(8);
        mem.write(5, 1);
        assert_eq!(mem.read(5), 1);
        assert_eq!(mem.capacity(), 8);
        assert_eq!(mem.address_width(), 3);
    }

    #[test]
    fn write_epoch_counts_every_write() {
        let mut mem = ClassicalMemory::zeros(8);
        assert_eq!(mem.write_epoch(), 0);
        mem.write(3, 1);
        assert_eq!(mem.write_epoch(), 1);
        // Rewriting the same value still advances the epoch (conservative
        // invalidation), and clones carry the counter forward.
        mem.write(3, 1);
        assert_eq!(mem.write_epoch(), 2);
        let clone = mem.clone();
        assert_eq!(clone.write_epoch(), 2);
    }

    #[test]
    fn memory_equality_ignores_write_epoch() {
        let fresh = ClassicalMemory::from_words(1, &[0, 1]).unwrap();
        let mut rewritten = ClassicalMemory::from_words(1, &[0, 0]).unwrap();
        rewritten.write(1, 1);
        assert_eq!(fresh, rewritten);
        assert_ne!(fresh.write_epoch(), rewritten.write_epoch());
    }

    #[test]
    fn address_terms_slice_matches_iter() {
        let s = AddressState::uniform(3, &[4, 1, 6]).unwrap();
        let from_iter: Vec<(Complex, u64)> = s.iter().copied().collect();
        assert_eq!(s.terms(), from_iter.as_slice());
        // Terms are sorted by address.
        assert_eq!(
            s.terms().iter().map(|&(_, a)| a).collect::<Vec<_>>(),
            vec![1, 4, 6]
        );
    }

    #[test]
    fn memory_validation() {
        assert!(matches!(
            ClassicalMemory::from_words(1, &[0, 1, 2, 0]),
            Err(MemoryError::WordTooWide { index: 2, .. })
        ));
        assert!(matches!(
            ClassicalMemory::from_words(1, &[0, 1, 0]),
            Err(MemoryError::BadCellCount(3))
        ));
        assert!(matches!(
            ClassicalMemory::from_words(0, &[0, 1]),
            Err(MemoryError::BadBusWidth(0))
        ));
    }

    #[test]
    fn error_display() {
        let e = BranchError::AddressOutOfRange {
            address: 9,
            address_width: 3,
        };
        assert_eq!(e.to_string(), "address 9 does not fit in 3 bits");
        assert!(MemoryError::BadCellCount(3).to_string().contains("3"));
    }
}
