//! A small quantum circuit builder over the state-vector simulator.
//!
//! Useful for expressing QRAM-adjacent circuits (Grover iterations, swap
//! networks, router cascades) as data: circuits can be composed, inverted,
//! layered into circuit layers (the paper's time unit), and executed.

use crate::gates;
use crate::state::StateVector;

/// One gate application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(u32),
    /// Pauli-X.
    X(u32),
    /// Pauli-Z.
    Z(u32),
    /// Z-rotation by an angle.
    Rz(u32, f64),
    /// Controlled-NOT (control, target).
    Cnot(u32, u32),
    /// Controlled-Z (control, target).
    Cz(u32, u32),
    /// SWAP.
    Swap(u32, u32),
    /// CSWAP / Fredkin (control, a, b) — the QRAM routing primitive.
    Cswap(u32, u32, u32),
    /// Toffoli (c1, c2, target).
    Toffoli(u32, u32, u32),
}

impl Gate {
    /// The qubits this gate acts on.
    #[must_use]
    pub fn qubits(&self) -> Vec<u32> {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::Z(q) | Gate::Rz(q, _) => vec![q],
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => vec![a, b],
            Gate::Cswap(a, b, c) | Gate::Toffoli(a, b, c) => vec![a, b, c],
        }
    }

    /// The inverse gate (all supported gates are self-inverse except Rz).
    #[must_use]
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::Rz(q, theta) => Gate::Rz(q, -theta),
            other => other,
        }
    }

    fn apply(&self, psi: &mut StateVector) {
        match *self {
            Gate::H(q) => psi.apply_h(q),
            Gate::X(q) => psi.apply_x(q),
            Gate::Z(q) => psi.apply_z(q),
            Gate::Rz(q, theta) => psi.apply_gate1(&gates::rz(theta), q),
            Gate::Cnot(c, t) => psi.apply_cnot(c, t),
            Gate::Cz(c, t) => psi.apply_controlled_gate1(&gates::z(), c, t),
            Gate::Swap(a, b) => psi.apply_swap(a, b),
            Gate::Cswap(c, a, b) => psi.apply_cswap(c, a, b),
            Gate::Toffoli(a, b, t) => psi.apply_toffoli(a, b, t),
        }
    }
}

/// An ordered list of gates on a fixed qubit register.
///
/// # Examples
///
/// ```
/// use qsim::circuit::Circuit;
///
/// // A Bell pair in one circuit layer pair.
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// let psi = c.simulate();
/// assert!((psi.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    num_qubits: u32,
    ops: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is outside `1..=26`.
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        assert!((1..=26).contains(&num_qubits));
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// The register width.
    #[must_use]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The gate sequence.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.ops
    }

    /// Number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit outside the register.
    pub fn push(&mut self, gate: Gate) -> &mut Self {
        for q in gate.qubits() {
            assert!(q < self.num_qubits, "qubit {q} outside register");
        }
        self.ops.push(gate);
        self
    }

    /// Appends a Hadamard.
    pub fn h(&mut self, q: u32) -> &mut Self {
        self.push(Gate::H(q))
    }

    /// Appends a Pauli-X.
    pub fn x(&mut self, q: u32) -> &mut Self {
        self.push(Gate::X(q))
    }

    /// Appends a Pauli-Z.
    pub fn z(&mut self, q: u32) -> &mut Self {
        self.push(Gate::Z(q))
    }

    /// Appends a CNOT.
    pub fn cnot(&mut self, c: u32, t: u32) -> &mut Self {
        self.push(Gate::Cnot(c, t))
    }

    /// Appends a SWAP.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Swap(a, b))
    }

    /// Appends a CSWAP (the router primitive).
    pub fn cswap(&mut self, c: u32, a: u32, b: u32) -> &mut Self {
        self.push(Gate::Cswap(c, a, b))
    }

    /// Appends a Toffoli.
    pub fn toffoli(&mut self, c1: u32, c2: u32, t: u32) -> &mut Self {
        self.push(Gate::Toffoli(c1, c2, t))
    }

    /// Appends all gates of another circuit.
    ///
    /// # Panics
    ///
    /// Panics if register widths differ.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert_eq!(self.num_qubits, other.num_qubits, "register widths differ");
        self.ops.extend_from_slice(&other.ops);
        self
    }

    /// The inverse (dagger) circuit: gates reversed and inverted.
    #[must_use]
    pub fn inverse(&self) -> Circuit {
        Circuit {
            num_qubits: self.num_qubits,
            ops: self.ops.iter().rev().map(Gate::inverse).collect(),
        }
    }

    /// Greedy circuit-layer count: gates on disjoint qubits share a layer —
    /// the paper's notion of circuit depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut ready_at = vec![0usize; self.num_qubits as usize];
        let mut depth = 0;
        for gate in &self.ops {
            let start = gate
                .qubits()
                .iter()
                .map(|&q| ready_at[q as usize])
                .max()
                .unwrap_or(0);
            for q in gate.qubits() {
                ready_at[q as usize] = start + 1;
            }
            depth = depth.max(start + 1);
        }
        depth
    }

    /// Runs the circuit on an existing state.
    ///
    /// # Panics
    ///
    /// Panics if the state's register width differs.
    pub fn run(&self, psi: &mut StateVector) {
        assert_eq!(psi.num_qubits(), self.num_qubits, "register widths differ");
        for gate in &self.ops {
            gate.apply(psi);
        }
    }

    /// Runs the circuit on `|0…0⟩` and returns the final state.
    #[must_use]
    pub fn simulate(&self) -> StateVector {
        let mut psi = StateVector::new(self.num_qubits);
        self.run(&mut psi);
        psi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let psi = c.simulate();
        assert!((psi.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert_eq!(c.gate_count(), 2);
    }

    #[test]
    fn depth_packs_disjoint_gates() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3); // one layer
        c.cnot(0, 1).cnot(2, 3); // one layer
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // forced into a third layer
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn inverse_uncomputes() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 1)
            .cswap(0, 1, 2)
            .toffoli(0, 1, 2)
            .push(Gate::Rz(2, 0.7))
            .z(1)
            .swap(0, 2);
        let mut full = c.clone();
        full.extend(&c.inverse());
        let psi = full.simulate();
        assert!((psi.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn router_cascade_routes_in_superposition() {
        // A one-level router as a circuit: control in |+⟩, input |1⟩.
        // Qubits: 0 router, 1 input, 2 left, 3 right.
        let mut c = Circuit::new(4);
        c.h(0); // router superposed between "left" (0) and "right" (1)
        c.x(1); // the input qubit carries |1⟩
                // Route: CSWAP on router=1 moves input→right; X-conjugated CSWAP
                // for router=0 moves input→left.
        c.x(0).cswap(0, 1, 2).x(0).cswap(0, 1, 3);
        let psi = c.simulate();
        // Router 0: qubit at left (q2); router 1: qubit at right (q3).
        assert!((psi.probability_of(0b0100) - 0.5).abs() < 1e-12);
        assert!((psi.probability_of(0b1001) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside register")]
    fn out_of_range_gate_rejected() {
        let mut c = Circuit::new(2);
        c.cnot(0, 2);
    }

    #[test]
    #[should_panic(expected = "register widths differ")]
    fn mismatched_extend_rejected() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend(&b);
    }

    #[test]
    fn empty_circuit_depth_zero() {
        assert_eq!(Circuit::new(3).depth(), 0);
        let psi = Circuit::new(3).simulate();
        assert_eq!(psi.probability_of(0), 1.0);
    }
}
