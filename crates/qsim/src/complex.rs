//! A minimal complex-number type.
//!
//! The workspace deliberately avoids a dependency on `num-complex`; quantum
//! amplitudes only need a handful of operations, implemented here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
///
/// # Examples
///
/// ```
/// use qsim::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, -Complex::ONE);
/// assert_eq!(Complex::new(3.0, 4.0).norm_sqr(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real-valued complex number.
    #[must_use]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// True when both components are within `tol` of `other`'s.
    #[must_use]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Multiplication by a real scalar.
    #[must_use]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, Add::add)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, -Complex::ONE);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn polar() {
        let z = Complex::from_polar(1.0, std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(Complex::I, 1e-12));
    }

    #[test]
    fn sum_and_scale() {
        let total: Complex = (0..4).map(|_| Complex::new(0.5, -0.25)).sum();
        assert_eq!(total, Complex::new(2.0, -1.0));
        assert_eq!(total / 2.0, Complex::new(1.0, -0.5));
        assert_eq!(total * 0.5, Complex::new(1.0, -0.5));
    }

    #[test]
    fn display() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex::new(0.0, 2.0).to_string(), "0+2i");
    }

    #[test]
    fn from_f64() {
        assert_eq!(Complex::from(2.5), Complex::new(2.5, 0.0));
    }
}
