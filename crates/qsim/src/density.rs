//! Small dense density-matrix simulator.
//!
//! Used for the virtual-distillation experiments (§8.2, Table 4): given a
//! noisy query state `ρ = (1−ε)|ψ⟩⟨ψ| + ε·ρ_err`, virtual distillation with
//! `k` parallel copies estimates observables on `ρᵏ / Tr(ρᵏ)`, suppressing
//! the error component exponentially in `k`.

use crate::state::StateVector;
use crate::Complex;

/// A dense density matrix on a `dim`-dimensional Hilbert space.
///
/// # Examples
///
/// ```
/// use qsim::density::DensityMatrix;
/// use qsim::state::StateVector;
///
/// let psi = StateVector::from_basis(1, 0);
/// let rho = DensityMatrix::from_pure(&psi);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMatrix {
    dim: usize,
    // Row-major dim×dim.
    elems: Vec<Complex>,
}

impl DensityMatrix {
    /// Maximum Hilbert-space dimension (matrix powers are O(dim³)).
    pub const MAX_DIM: usize = 512;

    /// The density matrix `|ψ⟩⟨ψ|` of a pure state.
    ///
    /// # Panics
    ///
    /// Panics if the state dimension exceeds [`Self::MAX_DIM`].
    #[must_use]
    pub fn from_pure(psi: &StateVector) -> Self {
        let dim = psi.dim();
        assert!(dim <= Self::MAX_DIM, "dimension {dim} exceeds MAX_DIM");
        let mut elems = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            for j in 0..dim {
                elems[i * dim + j] = psi.amplitude(i) * psi.amplitude(j).conj();
            }
        }
        DensityMatrix { dim, elems }
    }

    /// The maximally mixed state `I/dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is 0 or exceeds [`Self::MAX_DIM`].
    #[must_use]
    pub fn maximally_mixed(dim: usize) -> Self {
        assert!(dim > 0 && dim <= Self::MAX_DIM);
        let mut elems = vec![Complex::ZERO; dim * dim];
        for i in 0..dim {
            elems[i * dim + i] = Complex::real(1.0 / dim as f64);
        }
        DensityMatrix { dim, elems }
    }

    /// The maximally mixed state on the subspace *orthogonal* to `psi` —
    /// the worst-case error component for a noisy copy of `psi`.
    ///
    /// Constructed as `(I − |ψ⟩⟨ψ|) / (dim − 1)`.
    ///
    /// # Panics
    ///
    /// Panics if the state has dimension < 2 or exceeds [`Self::MAX_DIM`].
    #[must_use]
    pub fn orthogonal_error(psi: &StateVector) -> Self {
        let dim = psi.dim();
        assert!((2..=Self::MAX_DIM).contains(&dim));
        let proj = DensityMatrix::from_pure(psi);
        let mut elems = vec![Complex::ZERO; dim * dim];
        let scale = 1.0 / (dim as f64 - 1.0);
        for i in 0..dim {
            for j in 0..dim {
                let id = if i == j { Complex::ONE } else { Complex::ZERO };
                elems[i * dim + j] = (id - proj.elems[i * dim + j]).scale(scale);
            }
        }
        DensityMatrix { dim, elems }
    }

    /// The convex mixture `(1−p)·self + p·other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ or `p ∉ [0, 1]`.
    #[must_use]
    pub fn mix(&self, other: &DensityMatrix, p: f64) -> Self {
        assert_eq!(self.dim, other.dim, "mixture requires equal dimensions");
        assert!((0.0..=1.0).contains(&p), "mixing weight must be in [0, 1]");
        let elems = self
            .elems
            .iter()
            .zip(&other.elems)
            .map(|(a, b)| a.scale(1.0 - p) + b.scale(p))
            .collect();
        DensityMatrix {
            dim: self.dim,
            elems,
        }
    }

    /// Hilbert-space dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The trace.
    #[must_use]
    pub fn trace(&self) -> Complex {
        (0..self.dim).map(|i| self.elems[i * self.dim + i]).sum()
    }

    /// The purity `Tr(ρ²)`.
    #[must_use]
    pub fn purity(&self) -> f64 {
        self.matmul(self).trace().re
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn matmul(&self, other: &DensityMatrix) -> DensityMatrix {
        assert_eq!(self.dim, other.dim);
        let d = self.dim;
        let mut out = vec![Complex::ZERO; d * d];
        for i in 0..d {
            for k in 0..d {
                let aik = self.elems[i * d + k];
                if aik.norm_sqr() == 0.0 {
                    continue;
                }
                for j in 0..d {
                    out[i * d + j] += aik * other.elems[k * d + j];
                }
            }
        }
        DensityMatrix { dim: d, elems: out }
    }

    /// The `k`-th matrix power `ρᵏ` (`k ≥ 1`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn power(&self, k: u32) -> DensityMatrix {
        assert!(k >= 1, "matrix power requires k >= 1");
        let mut acc = self.clone();
        for _ in 1..k {
            acc = acc.matmul(self);
        }
        acc
    }

    /// The fidelity `⟨ψ|ρ|ψ⟩` with a pure state.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn fidelity_with_pure(&self, psi: &StateVector) -> f64 {
        assert_eq!(self.dim, psi.dim());
        let mut acc = Complex::ZERO;
        for i in 0..self.dim {
            for j in 0..self.dim {
                acc += psi.amplitude(i).conj() * self.elems[i * self.dim + j] * psi.amplitude(j);
            }
        }
        acc.re
    }

    /// The virtually distilled state `ρᵏ / Tr(ρᵏ)` (§8.2).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `Tr(ρᵏ)` vanishes.
    #[must_use]
    pub fn distill(&self, k: u32) -> DensityMatrix {
        let powered = self.power(k);
        let tr = powered.trace().re;
        assert!(tr > 1e-300, "Tr(rho^k) vanished; cannot distill");
        let elems = powered.elems.iter().map(|e| e.scale(1.0 / tr)).collect();
        DensityMatrix {
            dim: self.dim,
            elems,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_state(eps: f64) -> (DensityMatrix, StateVector) {
        let mut psi = StateVector::new(2);
        psi.apply_h(0);
        psi.apply_cnot(0, 1); // a Bell state as the "ideal query state"
        let ideal = DensityMatrix::from_pure(&psi);
        let err = DensityMatrix::orthogonal_error(&psi);
        (ideal.mix(&err, eps), psi)
    }

    #[test]
    fn pure_state_has_unit_purity_and_trace() {
        let psi = StateVector::from_basis(2, 3);
        let rho = DensityMatrix::from_pure(&psi);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_purity() {
        let rho = DensityMatrix::maximally_mixed(4);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mixture_fidelity_matches_weight() {
        let (rho, psi) = noisy_state(0.16);
        assert!((rho.fidelity_with_pure(&psi) - 0.84).abs() < 1e-12);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distillation_suppresses_error_exponentially() {
        // Table 4's model: fidelity 0.84 (Fat-Tree, k=4) → ~0.9994.
        let (rho, psi) = noisy_state(0.16);
        let f4 = rho.distill(4).fidelity_with_pure(&psi);
        assert!(
            f4 > 0.999,
            "distilled fidelity {f4} should be near the paper's 0.9994"
        );
        // BB: fidelity 0.872, k=2 → ~0.984.
        let (rho2, psi2) = noisy_state(0.128);
        let f2 = rho2.distill(2).fidelity_with_pure(&psi2);
        assert!(
            (0.975..0.995).contains(&f2),
            "distilled fidelity {f2} should be near the paper's 0.984"
        );
        // More copies never hurt.
        assert!(f4 > rho.distill(2).fidelity_with_pure(&psi));
    }

    #[test]
    fn distill_k1_is_identity() {
        let (rho, _) = noisy_state(0.3);
        let d = rho.distill(1);
        for (a, b) in rho.elems.iter().zip(&d.elems) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn orthogonal_error_has_zero_overlap_with_ideal() {
        let mut psi = StateVector::new(2);
        psi.apply_h(1);
        let err = DensityMatrix::orthogonal_error(&psi);
        assert!(err.fidelity_with_pure(&psi).abs() < 1e-12);
        assert!((err.trace().re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_against_hand_computed() {
        let psi0 = StateVector::from_basis(1, 0);
        let p0 = DensityMatrix::from_pure(&psi0);
        // P0 · P0 = P0 (projector).
        let sq = p0.matmul(&p0);
        for (a, b) in sq.elems.iter().zip(&p0.elems) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn power_zero_panics() {
        let rho = DensityMatrix::maximally_mixed(2);
        let _ = rho.power(0);
    }
}
