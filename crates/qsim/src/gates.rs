//! Single-qubit gate matrices and helpers.

use crate::Complex;

/// A 2×2 unitary acting on one qubit, in row-major order
/// `[[u00, u01], [u10, u11]]`.
pub type Gate1 = [[Complex; 2]; 2];

/// Pauli X.
#[must_use]
pub fn x() -> Gate1 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

/// Pauli Y.
#[must_use]
pub fn y() -> Gate1 {
    [[Complex::ZERO, -Complex::I], [Complex::I, Complex::ZERO]]
}

/// Pauli Z.
#[must_use]
pub fn z() -> Gate1 {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, -Complex::ONE],
    ]
}

/// Hadamard.
#[must_use]
pub fn h() -> Gate1 {
    let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
    [[s, s], [s, -s]]
}

/// Phase gate S = diag(1, i).
#[must_use]
pub fn s() -> Gate1 {
    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]]
}

/// T gate = diag(1, e^{iπ/4}).
#[must_use]
pub fn t() -> Gate1 {
    [
        [Complex::ONE, Complex::ZERO],
        [
            Complex::ZERO,
            Complex::from_polar(1.0, std::f64::consts::FRAC_PI_4),
        ],
    ]
}

/// Z-rotation `Rz(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
#[must_use]
pub fn rz(theta: f64) -> Gate1 {
    [
        [Complex::from_polar(1.0, -theta / 2.0), Complex::ZERO],
        [Complex::ZERO, Complex::from_polar(1.0, theta / 2.0)],
    ]
}

/// Y-rotation `Ry(θ)`.
#[must_use]
pub fn ry(theta: f64) -> Gate1 {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::real((theta / 2.0).sin());
    [[c, -s], [s, c]]
}

/// X-rotation `Rx(θ)`.
#[must_use]
pub fn rx(theta: f64) -> Gate1 {
    let c = Complex::real((theta / 2.0).cos());
    let s = Complex::new(0.0, -(theta / 2.0).sin());
    [[c, s], [s, c]]
}

/// Identity.
#[must_use]
pub fn id() -> Gate1 {
    [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]]
}

/// Returns true when `g` is unitary to within `tol` (U†U = I).
#[must_use]
pub fn is_unitary(g: &Gate1, tol: f64) -> bool {
    // Columns must be orthonormal.
    let c0 = (g[0][0], g[1][0]);
    let c1 = (g[0][1], g[1][1]);
    let n0 = c0.0.norm_sqr() + c0.1.norm_sqr();
    let n1 = c1.0.norm_sqr() + c1.1.norm_sqr();
    let dot = c0.0.conj() * c1.0 + c0.1.conj() * c1.1;
    (n0 - 1.0).abs() <= tol && (n1 - 1.0).abs() <= tol && dot.norm() <= tol
}

/// Multiplies two single-qubit gates: `a · b` (apply `b` first).
#[must_use]
pub fn matmul(a: &Gate1, b: &Gate1) -> Gate1 {
    let mut out = [[Complex::ZERO; 2]; 2];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// The Pauli group elements used by stochastic error channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Bit flip.
    X,
    /// Bit and phase flip.
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// The matrix of this Pauli operator.
    #[must_use]
    pub fn gate(self) -> Gate1 {
        match self {
            Pauli::X => x(),
            Pauli::Y => y(),
            Pauli::Z => z(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_gates_are_unitary() {
        for g in [
            x(),
            y(),
            z(),
            h(),
            s(),
            t(),
            id(),
            rz(0.3),
            ry(1.1),
            rx(2.7),
        ] {
            assert!(is_unitary(&g, 1e-12));
        }
    }

    #[test]
    fn hh_is_identity() {
        let hh = matmul(&h(), &h());
        let identity = id();
        for (row, id_row) in hh.iter().zip(identity.iter()) {
            for (got, want) in row.iter().zip(id_row.iter()) {
                assert!(got.approx_eq(*want, 1e-12));
            }
        }
    }

    #[test]
    fn xyz_anticommute_to_identity_products() {
        // XY = iZ
        let xy = matmul(&x(), &y());
        let iz = [
            [Complex::I * z()[0][0], Complex::I * z()[0][1]],
            [Complex::I * z()[1][0], Complex::I * z()[1][1]],
        ];
        for i in 0..2 {
            for j in 0..2 {
                assert!(xy[i][j].approx_eq(iz[i][j], 1e-12));
            }
        }
    }

    #[test]
    fn non_unitary_detected() {
        let bad = [[Complex::ONE, Complex::ONE], [Complex::ZERO, Complex::ONE]];
        assert!(!is_unitary(&bad, 1e-9));
    }

    #[test]
    fn pauli_gates_match() {
        assert_eq!(Pauli::X.gate(), x());
        assert_eq!(Pauli::Y.gate(), y());
        assert_eq!(Pauli::Z.gate(), z());
    }
}
