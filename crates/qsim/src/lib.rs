//! Quantum simulation substrate for the Fat-Tree QRAM reproduction.
//!
//! QRAM circuits are awkward for general-purpose simulators: a capacity-`N`
//! bucket-brigade tree contains `O(N)` router qubits, far beyond state-vector
//! reach, yet its entanglement structure is deliberately restricted — for a
//! *fixed* address, every router is in a definite classical state. This crate
//! therefore provides four complementary simulators:
//!
//! * [`state::StateVector`] — a dense qubit state-vector simulator with the
//!   gate set QRAM needs (X/H/…, CNOT, SWAP, CSWAP/Fredkin), used to verify
//!   gate semantics and run small end-to-end circuits.
//! * [`qudit::QuditState`] — a mixed-radix simulator where quantum routers
//!   are genuine qutrits (`|W⟩`, `|0⟩`, `|1⟩`), used to validate router
//!   semantics exactly as in the paper's Fig. 2(b).
//! * [`branch::AddressState`] / [`branch::QueryOutcome`] — a branch-based
//!   simulator exploiting the bucket-brigade structure: a query over a
//!   superposition of `B` addresses is simulated in `O(B · log N)` by
//!   tracking each address branch classically (the standard technique for
//!   QRAM analysis, cf. Hann et al. 2021).
//! * [`density::DensityMatrix`] — a small dense density-matrix simulator for
//!   the virtual-distillation experiments (Table 4).
//!
//! Noise enters through [`noise::ErrorChannel`] (per-gate stochastic Pauli
//! errors) and Monte-Carlo trajectory sampling.
//!
//! # Examples
//!
//! Verifying the CSWAP (Fredkin) gate — the native operation of a quantum
//! router:
//!
//! ```
//! use qsim::state::StateVector;
//!
//! // |c a b⟩ = control set, a=1, b=0: a and b swap.
//! let mut psi = StateVector::from_basis(3, 0b011); // qubit0=c, qubit1=a, qubit2=b
//! psi.apply_cswap(0, 1, 2);
//! assert_eq!(psi.dominant_basis_state(), 0b101);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch;
pub mod circuit;
pub mod complex;
pub mod density;
pub mod gates;
pub mod noise;
pub mod qudit;
pub mod state;

pub use complex::Complex;
