//! Stochastic error channels and Monte-Carlo trajectory sampling.
//!
//! The paper's noise model (§8.1) subjects each qubit touched by a gate to
//! a generic channel `E(ρ) = (1−ε)ρ + ε·KρK†`. For trajectory simulation we
//! specialize `K` to Pauli operators: with probability `ε` a fault is
//! injected after the gate; otherwise the gate is ideal.

use rand::Rng;

use crate::gates::Pauli;

/// A single-qubit stochastic error channel applied after each gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorChannel {
    /// No errors (ideal hardware).
    Ideal,
    /// With probability `p`, apply X.
    BitFlip(f64),
    /// With probability `p`, apply Z.
    PhaseFlip(f64),
    /// With probability `p`, apply X, Y, or Z uniformly at random.
    Depolarizing(f64),
}

impl ErrorChannel {
    /// The total fault probability of the channel.
    #[must_use]
    pub fn error_probability(&self) -> f64 {
        match *self {
            ErrorChannel::Ideal => 0.0,
            ErrorChannel::BitFlip(p)
            | ErrorChannel::PhaseFlip(p)
            | ErrorChannel::Depolarizing(p) => p,
        }
    }

    /// Validates the channel's probability.
    ///
    /// # Panics
    ///
    /// Panics if the probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        let p = self.error_probability();
        assert!(
            (0.0..=1.0).contains(&p),
            "error probability {p} outside [0, 1]"
        );
    }

    /// Samples a fault: `None` means the gate was ideal this trajectory.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Pauli> {
        self.validate();
        match *self {
            ErrorChannel::Ideal => None,
            ErrorChannel::BitFlip(p) => (rng.random::<f64>() < p).then_some(Pauli::X),
            ErrorChannel::PhaseFlip(p) => (rng.random::<f64>() < p).then_some(Pauli::Z),
            ErrorChannel::Depolarizing(p) => {
                (rng.random::<f64>() < p).then(|| match rng.random_range(0..3u8) {
                    0 => Pauli::X,
                    1 => Pauli::Y,
                    _ => Pauli::Z,
                })
            }
        }
    }
}

/// Accumulates Monte-Carlo trajectory outcomes into a fidelity estimate
/// with a standard error.
///
/// # Examples
///
/// ```
/// use qsim::noise::FidelityEstimator;
///
/// let mut est = FidelityEstimator::new();
/// for _ in 0..90 { est.record(1.0); }
/// for _ in 0..10 { est.record(0.0); }
/// assert!((est.mean() - 0.9).abs() < 1e-12);
/// assert!(est.std_error() < 0.05);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FidelityEstimator {
    sum: f64,
    sum_sq: f64,
    count: u64,
}

impl FidelityEstimator {
    /// Creates an empty estimator.
    #[must_use]
    pub fn new() -> Self {
        FidelityEstimator::default()
    }

    /// Records one trajectory's fidelity contribution (usually 0 or 1).
    pub fn record(&mut self, fidelity: f64) {
        self.sum += fidelity;
        self.sum_sq += fidelity * fidelity;
        self.count += 1;
    }

    /// Number of recorded trajectories.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The sample-mean fidelity (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The standard error of the mean (0 for fewer than 2 samples).
    #[must_use]
    pub fn std_error(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.mean();
        let var = (self.sum_sq / n - mean * mean).max(0.0) * n / (n - 1.0);
        (var / n).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_channel_never_faults() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(ErrorChannel::Ideal.sample(&mut rng), None);
        }
    }

    #[test]
    fn bit_flip_rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let channel = ErrorChannel::BitFlip(0.3);
        let faults = (0..10_000)
            .filter(|_| channel.sample(&mut rng).is_some())
            .count();
        let rate = faults as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed fault rate {rate}");
    }

    #[test]
    fn bit_flip_always_x() {
        let mut rng = StdRng::seed_from_u64(3);
        let channel = ErrorChannel::BitFlip(1.0);
        for _ in 0..20 {
            assert_eq!(channel.sample(&mut rng), Some(Pauli::X));
        }
    }

    #[test]
    fn depolarizing_covers_all_paulis() {
        let mut rng = StdRng::seed_from_u64(4);
        let channel = ErrorChannel::Depolarizing(1.0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(channel.sample(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probability_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ErrorChannel::Depolarizing(1.5).sample(&mut rng);
    }

    #[test]
    fn estimator_statistics() {
        let mut est = FidelityEstimator::new();
        assert_eq!(est.mean(), 0.0);
        assert_eq!(est.std_error(), 0.0);
        for _ in 0..75 {
            est.record(1.0);
        }
        for _ in 0..25 {
            est.record(0.0);
        }
        assert_eq!(est.count(), 100);
        assert!((est.mean() - 0.75).abs() < 1e-12);
        // Binomial std error ≈ sqrt(0.75·0.25/100) ≈ 0.0433.
        assert!((est.std_error() - 0.0435).abs() < 0.005);
    }
}
