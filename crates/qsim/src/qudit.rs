//! Mixed-radix (qudit) state-vector simulator.
//!
//! Quantum routers in a bucket-brigade QRAM are three-level systems: the
//! inactive "wait" state `|W⟩` plus the routing states `|0⟩` (left) and
//! `|1⟩` (right). This module simulates registers mixing qubits (dimension
//! 2) and qutrits (dimension 3) exactly, so the router primitives of
//! Fig. 2(b) can be validated against their textbook definitions.

use crate::Complex;

/// Router qutrit levels, mapped onto qudit levels `0, 1, 2`.
pub mod router_level {
    /// The inactive wait state `|W⟩`.
    pub const WAIT: u8 = 0;
    /// Routing state `|0⟩`: route input to the left child.
    pub const LEFT: u8 = 1;
    /// Routing state `|1⟩`: route input to the right child.
    pub const RIGHT: u8 = 2;
}

/// Dual-rail data levels for tree-internal wires: `VACUUM` means "no qubit
/// present here", so gates acting on unoccupied wires are physically
/// trivial — the mechanism behind bucket-brigade noise resilience.
pub mod data_level {
    /// No qubit present on this wire.
    pub const VACUUM: u8 = 0;
    /// A qubit carrying logical `|0⟩`.
    pub const ZERO: u8 = 1;
    /// A qubit carrying logical `|1⟩`.
    pub const ONE: u8 = 2;
}

/// A pure state over sites of heterogeneous dimension.
///
/// Site 0 is the fastest-varying index. Total dimension is the product of
/// the site dimensions and must stay small (this simulator is for unit-level
/// validation, not scale).
///
/// # Examples
///
/// A quantum router routing an input qubit in superposition of directions:
///
/// ```
/// use qsim::qudit::{QuditState, router_level};
///
/// // Sites: 0 = router (qutrit), 1 = input, 2 = left out, 3 = right out.
/// let mut psi = QuditState::from_basis(&[3, 2, 2, 2], &[router_level::LEFT, 1, 0, 0]);
/// psi.route(0, 1, 2, 3);
/// // Input moved to the left output.
/// assert_eq!(psi.dominant_levels(), vec![router_level::LEFT, 0, 1, 0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuditState {
    dims: Vec<u8>,
    amps: Vec<Complex>,
}

impl QuditState {
    /// Maximum total Hilbert-space dimension accepted by the constructors.
    pub const MAX_DIM: usize = 1 << 22;

    /// The all-zeros basis state over the given site dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is < 2 or the total dimension exceeds
    /// [`Self::MAX_DIM`].
    #[must_use]
    pub fn new(dims: &[u8]) -> Self {
        let levels = vec![0; dims.len()];
        QuditState::from_basis(dims, &levels)
    }

    /// A computational basis state with the given per-site levels.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are invalid, `levels` has the wrong length, or
    /// any level is out of range for its site.
    #[must_use]
    pub fn from_basis(dims: &[u8], levels: &[u8]) -> Self {
        assert!(!dims.is_empty(), "at least one site is required");
        assert_eq!(dims.len(), levels.len(), "levels length must match dims");
        let mut total = 1usize;
        for (site, (&d, &l)) in dims.iter().zip(levels).enumerate() {
            assert!(d >= 2, "site {site} has dimension {d} < 2");
            assert!(
                l < d,
                "site {site} level {l} out of range for dimension {d}"
            );
            total = total
                .checked_mul(usize::from(d))
                .filter(|&t| t <= Self::MAX_DIM)
                .expect("total dimension exceeds QuditState::MAX_DIM");
        }
        let mut amps = vec![Complex::ZERO; total];
        let idx = Self::index_of(dims, levels);
        amps[idx] = Complex::ONE;
        QuditState {
            dims: dims.to_vec(),
            amps,
        }
    }

    fn index_of(dims: &[u8], levels: &[u8]) -> usize {
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (&d, &l) in dims.iter().zip(levels) {
            idx += usize::from(l) * stride;
            stride *= usize::from(d);
        }
        idx
    }

    fn levels_of(&self, mut index: usize) -> Vec<u8> {
        let mut levels = Vec::with_capacity(self.dims.len());
        for &d in &self.dims {
            levels.push((index % usize::from(d)) as u8);
            index /= usize::from(d);
        }
        levels
    }

    /// Site dimensions.
    #[must_use]
    pub fn dims(&self) -> &[u8] {
        &self.dims
    }

    /// Total Hilbert-space dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// Amplitude of the basis state with the given levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is malformed.
    #[must_use]
    pub fn amplitude(&self, levels: &[u8]) -> Complex {
        assert_eq!(levels.len(), self.dims.len());
        self.amps[Self::index_of(&self.dims, levels)]
    }

    /// Probability of the basis state with the given levels.
    #[must_use]
    pub fn probability_of(&self, levels: &[u8]) -> f64 {
        self.amplitude(levels).norm_sqr()
    }

    /// The levels of the most probable basis state.
    #[must_use]
    pub fn dominant_levels(&self) -> Vec<u8> {
        let (idx, _) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.norm_sqr()
                    .partial_cmp(&b.norm_sqr())
                    .expect("amplitudes are finite")
            })
            .expect("state is non-empty");
        self.levels_of(idx)
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn inner(&self, other: &QuditState) -> Complex {
        assert_eq!(self.dims, other.dims, "inner product requires equal dims");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Applies an arbitrary basis-permutation unitary: `f` maps the level
    /// tuple of each basis state to a new tuple.
    ///
    /// Basis states with exactly zero amplitude are skipped (they cannot
    /// affect the state), which makes permutations cost `O(support)` on
    /// sparse states; bijectivity violations are therefore detected on the
    /// occupied support only.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a bijection on the occupied basis states
    /// (detected by a collision) or returns out-of-range levels.
    pub fn apply_permutation<F>(&mut self, f: F)
    where
        F: Fn(&[u8]) -> Vec<u8>,
    {
        let mut new_amps = vec![Complex::ZERO; self.amps.len()];
        let mut filled = vec![false; self.amps.len()];
        for (i, &a) in self.amps.iter().enumerate() {
            if a.norm_sqr() == 0.0 {
                continue;
            }
            let levels = self.levels_of(i);
            let new_levels = f(&levels);
            assert_eq!(
                new_levels.len(),
                self.dims.len(),
                "permutation must preserve the number of sites"
            );
            for (site, (&d, &l)) in self.dims.iter().zip(&new_levels).enumerate() {
                assert!(l < d, "permutation sent site {site} to invalid level {l}");
            }
            let j = Self::index_of(&self.dims, &new_levels);
            assert!(
                !filled[j],
                "permutation is not a bijection: collision at index {j}"
            );
            filled[j] = true;
            new_amps[j] = a;
        }
        self.amps = new_amps;
    }

    /// Applies a dense single-site unitary (`d×d`, row-major) to `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range or the matrix size does not match
    /// the site dimension.
    pub fn apply_gate(&mut self, site: usize, matrix: &[Vec<Complex>]) {
        assert!(site < self.dims.len(), "site {site} out of range");
        let d = usize::from(self.dims[site]);
        assert_eq!(matrix.len(), d, "matrix rows must equal site dimension");
        assert!(
            matrix.iter().all(|row| row.len() == d),
            "matrix must be square"
        );
        let stride: usize = self.dims[..site].iter().map(|&x| usize::from(x)).product();
        let block = stride * d;
        let mut scratch = vec![Complex::ZERO; d];
        for base in (0..self.amps.len()).step_by(block) {
            for offset in 0..stride {
                for (l, s) in scratch.iter_mut().enumerate() {
                    *s = self.amps[base + offset + l * stride];
                }
                for (l, row) in matrix.iter().enumerate() {
                    let mut acc = Complex::ZERO;
                    for (m, &cell) in row.iter().enumerate() {
                        acc += cell * scratch[m];
                    }
                    self.amps[base + offset + l * stride] = acc;
                }
            }
        }
    }

    /// Swaps the contents of two sites of equal dimension.
    ///
    /// # Panics
    ///
    /// Panics if the sites coincide or have different dimensions.
    pub fn swap_sites(&mut self, a: usize, b: usize) {
        assert_ne!(a, b, "swap sites must differ");
        assert_eq!(
            self.dims[a], self.dims[b],
            "swapped sites must have equal dims"
        );
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            out.swap(a, b);
            out
        });
    }

    /// Swaps sites `a` and `b` when `control` is at `control_level`
    /// (a qudit-controlled SWAP).
    ///
    /// # Panics
    ///
    /// Panics if sites coincide, dimensions differ, or the control level is
    /// out of range.
    pub fn controlled_swap(&mut self, control: usize, control_level: u8, a: usize, b: usize) {
        assert!(
            control != a && control != b && a != b,
            "sites must be distinct"
        );
        assert_eq!(
            self.dims[a], self.dims[b],
            "swapped sites must have equal dims"
        );
        assert!(
            control_level < self.dims[control],
            "control level out of range"
        );
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            if out[control] == control_level {
                out.swap(a, b);
            }
            out
        });
    }

    /// Flips a qubit `target` when `control` is at `control_level` — used
    /// for data retrieval, where the classical memory bit is copied onto
    /// the bus only along the occupied (active) path.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a qubit, sites coincide, or the control
    /// level is out of range.
    pub fn controlled_x(&mut self, control: usize, control_level: u8, target: usize) {
        assert_ne!(control, target, "sites must be distinct");
        assert_eq!(self.dims[target], 2, "controlled_x target must be a qubit");
        assert!(
            control_level < self.dims[control],
            "control level out of range"
        );
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            if out[control] == control_level {
                out[target] ^= 1;
            }
            out
        });
    }

    /// The ROUTE primitive of a quantum router (Fig. 2(b)): two CSWAPs that
    /// move the input to the left output when the router is `|0⟩` and to
    /// the right output when it is `|1⟩`. A router in `|W⟩` routes
    /// trivially (no motion).
    ///
    /// # Panics
    ///
    /// Panics if `router` is not a qutrit or the data sites are invalid.
    pub fn route(&mut self, router: usize, input: usize, left: usize, right: usize) {
        assert_eq!(self.dims[router], 3, "router site must be a qutrit");
        self.controlled_swap(router, router_level::LEFT, input, left);
        self.controlled_swap(router, router_level::RIGHT, input, right);
    }

    /// The LOAD primitive with dual-rail wires: moves an external qubit
    /// (site `ext`, dimension 2) onto a vacuum wire (site `wire`,
    /// dimension 3, [`data_level`] encoding), leaving the external site in
    /// `|0⟩`. Its own inverse implements UNLOAD.
    ///
    /// # Panics
    ///
    /// Panics if `ext` is not a qubit or `wire` not a qutrit.
    pub fn load_dual_rail(&mut self, ext: usize, wire: usize) {
        assert_eq!(self.dims[ext], 2, "external site must be a qubit");
        assert_eq!(self.dims[wire], 3, "wire site must be a dual-rail qutrit");
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            match (out[ext], out[wire]) {
                (b, lvl) if lvl == data_level::VACUUM => {
                    out[ext] = 0;
                    out[wire] = if b == 0 {
                        data_level::ZERO
                    } else {
                        data_level::ONE
                    };
                }
                (0, lvl) if lvl == data_level::ZERO => {
                    out[wire] = data_level::VACUUM;
                    out[ext] = 0;
                }
                (0, lvl) if lvl == data_level::ONE => {
                    out[wire] = data_level::VACUUM;
                    out[ext] = 1;
                }
                _ => {}
            }
            out
        });
    }

    /// The STORE primitive with dual-rail wires: absorbs the qubit on a
    /// wire into a waiting router (`|b⟩_wire |W⟩_r ↔ |vac⟩_wire |b⟩_r`).
    /// A *vacuum* wire leaves the router in `|W⟩` — exactly the physical
    /// behaviour that a plain qubit encoding cannot express. Involutive
    /// (UNSTORE).
    ///
    /// # Panics
    ///
    /// Panics if `router` or `wire` is not a qutrit.
    pub fn store_dual_rail(&mut self, router: usize, wire: usize) {
        assert_eq!(self.dims[router], 3, "router site must be a qutrit");
        assert_eq!(self.dims[wire], 3, "wire site must be a dual-rail qutrit");
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            match (out[wire], out[router]) {
                (w, r) if r == router_level::WAIT && w != data_level::VACUUM => {
                    out[wire] = data_level::VACUUM;
                    out[router] = if w == data_level::ZERO {
                        router_level::LEFT
                    } else {
                        router_level::RIGHT
                    };
                }
                (w, r) if w == data_level::VACUUM && r == router_level::LEFT => {
                    out[router] = router_level::WAIT;
                    out[wire] = data_level::ZERO;
                }
                (w, r) if w == data_level::VACUUM && r == router_level::RIGHT => {
                    out[router] = router_level::WAIT;
                    out[wire] = data_level::ONE;
                }
                _ => {}
            }
            out
        });
    }

    /// Data retrieval on a dual-rail wire: flips the logical bit riding the
    /// wire (`ZERO ↔ ONE`) and leaves `VACUUM` untouched — the classically
    /// controlled copy only affects leaves where the bus is present.
    ///
    /// # Panics
    ///
    /// Panics if `wire` is not a qutrit.
    pub fn flip_dual_rail(&mut self, wire: usize) {
        assert_eq!(self.dims[wire], 3, "wire site must be a dual-rail qutrit");
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            if out[wire] == data_level::ZERO {
                out[wire] = data_level::ONE;
            } else if out[wire] == data_level::ONE {
                out[wire] = data_level::ZERO;
            }
            out
        });
    }

    /// The STORE primitive: absorbs an input qubit into a waiting router,
    /// putting the router into `|0⟩`/`|1⟩` according to the qubit and
    /// resetting the qubit to `|0⟩`. Routers not in `|W⟩` are untouched.
    ///
    /// Defined as the basis permutation
    /// `|b⟩_in |W⟩_r ↔ |0⟩_in |b⟩_r` (with `b ∈ {0,1}` mapping to router
    /// levels LEFT/RIGHT), which also serves as its own inverse
    /// (UNSTORE).
    ///
    /// # Panics
    ///
    /// Panics if `router` is not a qutrit or `input` is not a qubit.
    pub fn store(&mut self, router: usize, input: usize) {
        assert_eq!(self.dims[router], 3, "router site must be a qutrit");
        assert_eq!(self.dims[input], 2, "input site must be a qubit");
        self.apply_permutation(|levels| {
            let mut out = levels.to_vec();
            match (out[input], out[router]) {
                (b, lvl) if lvl == router_level::WAIT => {
                    out[input] = 0;
                    out[router] = if b == 0 {
                        router_level::LEFT
                    } else {
                        router_level::RIGHT
                    };
                }
                (0, lvl) if lvl == router_level::LEFT => {
                    out[router] = router_level::WAIT;
                    out[input] = 0;
                }
                (0, lvl) if lvl == router_level::RIGHT => {
                    out[router] = router_level::WAIT;
                    out[input] = 1;
                }
                _ => {}
            }
            out
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;

    fn qubit_h() -> Vec<Vec<Complex>> {
        let g = gates::h();
        vec![vec![g[0][0], g[0][1]], vec![g[1][0], g[1][1]]]
    }

    #[test]
    fn basis_construction_and_amplitude() {
        let psi = QuditState::from_basis(&[3, 2], &[2, 1]);
        assert_eq!(psi.dim(), 6);
        assert_eq!(psi.probability_of(&[2, 1]), 1.0);
        assert_eq!(psi.dominant_levels(), vec![2, 1]);
    }

    #[test]
    fn route_left_and_right() {
        // router LEFT: input moves to left output.
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2], &[router_level::LEFT, 1, 0, 0]);
        psi.route(0, 1, 2, 3);
        assert_eq!(psi.dominant_levels(), vec![router_level::LEFT, 0, 1, 0]);

        // router RIGHT: input moves to right output.
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2], &[router_level::RIGHT, 1, 0, 0]);
        psi.route(0, 1, 2, 3);
        assert_eq!(psi.dominant_levels(), vec![router_level::RIGHT, 0, 0, 1]);
    }

    #[test]
    fn wait_router_routes_trivially() {
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2], &[router_level::WAIT, 1, 0, 0]);
        let before = psi.clone();
        psi.route(0, 1, 2, 3);
        assert_eq!(psi, before);
    }

    #[test]
    fn route_in_superposition_splits_amplitude() {
        // Router in (|LEFT⟩+|RIGHT⟩)/√2 — prepared via a gate on the qutrit.
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2], &[router_level::LEFT, 1, 0, 0]);
        let s = Complex::real(std::f64::consts::FRAC_1_SQRT_2);
        // Unitary on the qutrit mixing LEFT and RIGHT, fixing WAIT.
        let mix = vec![
            vec![Complex::ONE, Complex::ZERO, Complex::ZERO],
            vec![Complex::ZERO, s, s],
            vec![Complex::ZERO, s, -s],
        ];
        psi.apply_gate(0, &mix);
        psi.route(0, 1, 2, 3);
        assert!((psi.probability_of(&[router_level::LEFT, 0, 1, 0]) - 0.5).abs() < 1e-12);
        assert!((psi.probability_of(&[router_level::RIGHT, 0, 0, 1]) - 0.5).abs() < 1e-12);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn store_absorbs_qubit_and_is_involutive() {
        for bit in [0u8, 1] {
            let mut psi = QuditState::from_basis(&[3, 2], &[router_level::WAIT, bit]);
            psi.store(0, 1);
            let expected = if bit == 0 {
                router_level::LEFT
            } else {
                router_level::RIGHT
            };
            assert_eq!(psi.dominant_levels(), vec![expected, 0]);
            // UNSTORE = STORE again.
            psi.store(0, 1);
            assert_eq!(psi.dominant_levels(), vec![router_level::WAIT, bit]);
        }
    }

    #[test]
    fn store_preserves_superposition() {
        // Input in |+⟩: router ends in (|LEFT⟩+|RIGHT⟩)/√2.
        let mut psi = QuditState::from_basis(&[3, 2], &[router_level::WAIT, 0]);
        psi.apply_gate(1, &qubit_h());
        psi.store(0, 1);
        assert!((psi.probability_of(&[router_level::LEFT, 0]) - 0.5).abs() < 1e-12);
        assert!((psi.probability_of(&[router_level::RIGHT, 0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn one_level_qram_query_with_qutrit_router() {
        // A complete capacity-2 query, Eq. (1) of the paper, with memory
        // x = [1, 0] and address |+⟩.
        //
        // Sites: 0 router (qutrit), 1 escape/input qubit, 2 left leaf,
        // 3 right leaf, 4 external bus output register.
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2, 2], &[router_level::WAIT, 0, 0, 0, 0]);
        psi.apply_gate(1, &qubit_h());
        // Address loading: STORE the address qubit into the router; site 1
        // becomes the fresh |0⟩ bus qubit.
        psi.store(0, 1);
        // ROUTE the bus down to the leaves.
        psi.route(0, 1, 2, 3);
        // Data retrieval: copy classical bits onto the *occupied* leaves
        // (the "delocalized bus"). x₀ = 1 flips the left leaf along the
        // LEFT-routed branch; x₁ = 0 needs no gate.
        psi.controlled_x(0, router_level::LEFT, 2);
        // UNROUTE the bus back up and transport it out of the tree.
        psi.route(0, 1, 2, 3);
        psi.swap_sites(1, 4);
        // Address unloading: UNSTORE restores the address onto site 1 and
        // reverts the router to |W⟩.
        psi.store(0, 1);
        // Final state: (|addr=0⟩|bus=1⟩ + |addr=1⟩|bus=0⟩)/√2 with all
        // routers back in |W⟩ and leaves clean — Eq. (1) exactly.
        let p0 = psi.probability_of(&[router_level::WAIT, 0, 0, 0, 1]);
        let p1 = psi.probability_of(&[router_level::WAIT, 1, 0, 0, 0]);
        assert!(
            (p0 - 0.5).abs() < 1e-12,
            "address 0 returns x₀ = 1, got p = {p0}"
        );
        assert!(
            (p1 - 0.5).abs() < 1e-12,
            "address 1 returns x₁ = 0, got p = {p1}"
        );
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn retrieval_on_unoccupied_leaf_leaves_no_garbage() {
        // Address |1⟩ (routed RIGHT): a classical write to the *left* leaf
        // must not touch the state, otherwise the leaves stay entangled
        // with the address and fidelity is lost.
        let mut psi = QuditState::from_basis(&[3, 2, 2, 2, 2], &[router_level::WAIT, 1, 0, 0, 0]);
        psi.store(0, 1);
        psi.route(0, 1, 2, 3);
        psi.controlled_x(0, router_level::LEFT, 2); // x₀ = 1, inactive branch
        psi.route(0, 1, 2, 3);
        psi.swap_sites(1, 4);
        psi.store(0, 1);
        assert_eq!(
            psi.dominant_levels(),
            vec![router_level::WAIT, 1, 0, 0, 0],
            "leaves must be clean after the query"
        );
    }

    #[test]
    fn apply_gate_is_norm_preserving() {
        let mut psi = QuditState::from_basis(&[2, 3, 2], &[1, 2, 0]);
        psi.apply_gate(0, &qubit_h());
        psi.apply_gate(2, &qubit_h());
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_sites_moves_levels() {
        let mut psi = QuditState::from_basis(&[2, 2, 2], &[1, 0, 0]);
        psi.swap_sites(0, 2);
        assert_eq!(psi.dominant_levels(), vec![0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "not a bijection")]
    fn non_bijective_permutation_detected() {
        let mut psi = QuditState::new(&[2, 2]);
        // Two occupied basis states mapped onto one target.
        psi.apply_gate(0, &qubit_h());
        psi.apply_permutation(|_| vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "equal dims")]
    fn swap_mismatched_dims_panics() {
        let mut psi = QuditState::new(&[2, 3]);
        psi.swap_sites(0, 1);
    }

    #[test]
    fn inner_product_of_identical_states() {
        let psi = QuditState::from_basis(&[3, 2], &[1, 1]);
        assert!(psi.inner(&psi).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn load_dual_rail_roundtrip() {
        for bit in [0u8, 1] {
            let mut psi = QuditState::from_basis(&[2, 3], &[bit, data_level::VACUUM]);
            psi.load_dual_rail(0, 1);
            let expected = if bit == 0 {
                data_level::ZERO
            } else {
                data_level::ONE
            };
            assert_eq!(psi.dominant_levels(), vec![0, expected]);
            psi.load_dual_rail(0, 1); // UNLOAD
            assert_eq!(psi.dominant_levels(), vec![bit, data_level::VACUUM]);
        }
    }

    #[test]
    fn store_dual_rail_ignores_vacuum() {
        // A waiting router next to a vacuum wire stays |W⟩ — the key
        // physical behaviour of bucket-brigade stores.
        let mut psi = QuditState::from_basis(&[3, 3], &[router_level::WAIT, data_level::VACUUM]);
        let before = psi.clone();
        psi.store_dual_rail(0, 1);
        assert_eq!(psi, before);
    }

    #[test]
    fn store_dual_rail_absorbs_and_restores() {
        let mut psi = QuditState::from_basis(&[3, 3], &[router_level::WAIT, data_level::ONE]);
        psi.store_dual_rail(0, 1);
        assert_eq!(
            psi.dominant_levels(),
            vec![router_level::RIGHT, data_level::VACUUM]
        );
        psi.store_dual_rail(0, 1);
        assert_eq!(
            psi.dominant_levels(),
            vec![router_level::WAIT, data_level::ONE]
        );
    }

    #[test]
    fn flip_dual_rail_leaves_vacuum_alone() {
        let mut psi = QuditState::from_basis(&[3], &[data_level::VACUUM]);
        psi.flip_dual_rail(0);
        assert_eq!(psi.dominant_levels(), vec![data_level::VACUUM]);
        let mut psi = QuditState::from_basis(&[3], &[data_level::ZERO]);
        psi.flip_dual_rail(0);
        assert_eq!(psi.dominant_levels(), vec![data_level::ONE]);
    }
}
