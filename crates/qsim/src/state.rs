//! Dense qubit state-vector simulator.

use rand::Rng;

use crate::gates::Gate1;
use crate::Complex;

/// A pure state of `n` qubits stored as a dense vector of `2ⁿ` amplitudes.
///
/// Qubit `q` corresponds to bit `q` of the basis-state index (qubit 0 is the
/// least-significant bit).
///
/// # Examples
///
/// Preparing a uniform superposition and querying probabilities:
///
/// ```
/// use qsim::state::StateVector;
///
/// let mut psi = StateVector::new(2);
/// psi.apply_h(0);
/// psi.apply_h(1);
/// for basis in 0..4 {
///     assert!((psi.probability_of(basis) - 0.25).abs() < 1e-12);
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: u32,
    amps: Vec<Complex>,
}

impl StateVector {
    /// The all-zeros state `|0…0⟩` on `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or larger than 26 (dense simulation
    /// beyond ~26 qubits exhausts memory).
    #[must_use]
    pub fn new(num_qubits: u32) -> Self {
        StateVector::from_basis(num_qubits, 0)
    }

    /// The computational basis state `|basis⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `basis` does not fit in `num_qubits` bits or if
    /// `num_qubits` is outside `1..=26`.
    #[must_use]
    pub fn from_basis(num_qubits: u32, basis: usize) -> Self {
        assert!(
            (1..=26).contains(&num_qubits),
            "num_qubits {num_qubits} outside supported range 1..=26"
        );
        let dim = 1usize << num_qubits;
        assert!(
            basis < dim,
            "basis state {basis} out of range for {num_qubits} qubits"
        );
        let mut amps = vec![Complex::ZERO; dim];
        amps[basis] = Complex::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from explicit amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two ≥ 2 or the vector has
    /// zero norm.
    #[must_use]
    pub fn from_amplitudes(amps: Vec<Complex>) -> Self {
        assert!(
            amps.len().is_power_of_two() && amps.len() >= 2,
            "amplitude vector length {} is not a power of two >= 2",
            amps.len()
        );
        let num_qubits = amps.len().trailing_zeros();
        let mut sv = StateVector { num_qubits, amps };
        let norm = sv.norm();
        assert!(norm > 1e-300, "cannot normalize a zero state vector");
        for a in &mut sv.amps {
            *a = *a / norm;
        }
        sv
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Dimension `2ⁿ` of the Hilbert space.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.amps.len()
    }

    /// The amplitude of basis state `basis`.
    ///
    /// # Panics
    ///
    /// Panics if `basis ≥ dim`.
    #[must_use]
    pub fn amplitude(&self, basis: usize) -> Complex {
        self.amps[basis]
    }

    /// All amplitudes in basis order.
    #[must_use]
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// Euclidean norm (should be 1 for a valid state).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Probability of observing basis state `basis`.
    #[must_use]
    pub fn probability_of(&self, basis: usize) -> f64 {
        self.amps[basis].norm_sqr()
    }

    /// Probability that qubit `q` measures as 1.
    #[must_use]
    pub fn probability_one(&self, q: u32) -> f64 {
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// The basis state with the largest probability.
    #[must_use]
    pub fn dominant_basis_state(&self) -> usize {
        self.amps
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.norm_sqr()
                    .partial_cmp(&b.norm_sqr())
                    .expect("amplitudes are finite")
            })
            .map(|(i, _)| i)
            .expect("state vector is non-empty")
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the states have different qubit counts.
    #[must_use]
    pub fn inner(&self, other: &StateVector) -> Complex {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner product requires equal qubit counts"
        );
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` with another pure state.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a single-qubit gate to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_gate1(&mut self, g: &Gate1, q: u32) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = g[0][0] * a0 + g[0][1] * a1;
                self.amps[j] = g[1][0] * a0 + g[1][1] * a1;
            }
        }
    }

    /// Applies a single-qubit gate controlled on `control` being `|1⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubits coincide or are out of range.
    pub fn apply_controlled_gate1(&mut self, g: &Gate1, control: u32, target: u32) {
        assert!(control < self.num_qubits && target < self.num_qubits);
        assert_ne!(control, target, "control and target must differ");
        let cmask = 1usize << control;
        let tmask = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & tmask == 0 {
                let j = i | tmask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = g[0][0] * a0 + g[0][1] * a1;
                self.amps[j] = g[1][0] * a0 + g[1][1] * a1;
            }
        }
    }

    /// Pauli-X on qubit `q`.
    pub fn apply_x(&mut self, q: u32) {
        self.apply_gate1(&crate::gates::x(), q);
    }

    /// Hadamard on qubit `q`.
    pub fn apply_h(&mut self, q: u32) {
        self.apply_gate1(&crate::gates::h(), q);
    }

    /// Pauli-Z on qubit `q`.
    pub fn apply_z(&mut self, q: u32) {
        self.apply_gate1(&crate::gates::z(), q);
    }

    /// CNOT with the given control and target.
    pub fn apply_cnot(&mut self, control: u32, target: u32) {
        self.apply_controlled_gate1(&crate::gates::x(), control, target);
    }

    /// SWAP of qubits `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either is out of range.
    pub fn apply_swap(&mut self, a: u32, b: u32) {
        assert!(a < self.num_qubits && b < self.num_qubits);
        assert_ne!(a, b, "swap qubits must differ");
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            // Visit each pair once: a set, b clear.
            if i & amask != 0 && i & bmask == 0 {
                let j = (i & !amask) | bmask;
                self.amps.swap(i, j);
            }
        }
    }

    /// CSWAP (Fredkin): swaps `a` and `b` when `control` is `|1⟩` — the
    /// native routing operation of a quantum router.
    ///
    /// # Panics
    ///
    /// Panics if any qubits coincide or are out of range.
    pub fn apply_cswap(&mut self, control: u32, a: u32, b: u32) {
        assert!(control < self.num_qubits && a < self.num_qubits && b < self.num_qubits);
        assert!(
            control != a && control != b && a != b,
            "cswap qubits must be distinct"
        );
        let cmask = 1usize << control;
        let amask = 1usize << a;
        let bmask = 1usize << b;
        for i in 0..self.amps.len() {
            if i & cmask != 0 && i & amask != 0 && i & bmask == 0 {
                let j = (i & !amask) | bmask;
                self.amps.swap(i, j);
            }
        }
    }

    /// Toffoli (CCX) with two controls.
    ///
    /// # Panics
    ///
    /// Panics if any qubits coincide or are out of range.
    pub fn apply_toffoli(&mut self, c1: u32, c2: u32, target: u32) {
        assert!(c1 < self.num_qubits && c2 < self.num_qubits && target < self.num_qubits);
        assert!(c1 != c2 && c1 != target && c2 != target);
        let m1 = 1usize << c1;
        let m2 = 1usize << c2;
        let mt = 1usize << target;
        for i in 0..self.amps.len() {
            if i & m1 != 0 && i & m2 != 0 && i & mt == 0 {
                let j = i | mt;
                self.amps.swap(i, j);
            }
        }
    }

    /// Measures qubit `q` in the computational basis, collapsing the state.
    /// Returns the observed bit.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: u32, rng: &mut R) -> bool {
        let p1 = self.probability_one(q);
        let outcome = rng.random::<f64>() < p1;
        let mask = 1usize << q;
        let keep_set = outcome;
        let p = if outcome { p1 } else { 1.0 - p1 };
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & mask != 0) == keep_set {
                *a = a.scale(scale);
            } else {
                *a = Complex::ZERO;
            }
        }
        outcome
    }

    /// Samples a full basis-state measurement without collapsing the state.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.random();
        let mut acc = 0.0;
        for (i, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return i;
            }
        }
        self.amps.len() - 1
    }

    /// Expectation value of Pauli-Z on qubit `q`: `P(0) − P(1)`.
    #[must_use]
    pub fn expectation_z(&self, q: u32) -> f64 {
        1.0 - 2.0 * self.probability_one(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn basis_state_construction() {
        let psi = StateVector::from_basis(3, 0b101);
        assert_eq!(psi.dim(), 8);
        assert_eq!(psi.probability_of(0b101), 1.0);
        assert_eq!(psi.dominant_basis_state(), 0b101);
    }

    #[test]
    fn bell_state() {
        let mut psi = StateVector::new(2);
        psi.apply_h(0);
        psi.apply_cnot(0, 1);
        assert!((psi.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((psi.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert!(psi.probability_of(0b01) < 1e-12);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cswap_truth_table() {
        // control clear: no swap.
        let mut psi = StateVector::from_basis(3, 0b010); // c=0, a=1, b=0
        psi.apply_cswap(0, 1, 2);
        assert_eq!(psi.dominant_basis_state(), 0b010);
        // control set: swap a and b.
        let mut psi = StateVector::from_basis(3, 0b011); // c=1, a=1, b=0
        psi.apply_cswap(0, 1, 2);
        assert_eq!(psi.dominant_basis_state(), 0b101);
    }

    #[test]
    fn cswap_in_superposition_routes_both_ways() {
        // control in |+>, a=1, b=0  →  (|0,1,0⟩ + |1,0,1⟩)/√2
        let mut psi = StateVector::from_basis(3, 0b010);
        psi.apply_h(0);
        psi.apply_cswap(0, 1, 2);
        assert!((psi.probability_of(0b010) - 0.5).abs() < 1e-12);
        assert!((psi.probability_of(0b101) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn swap_exchanges_qubits() {
        let mut psi = StateVector::from_basis(2, 0b01);
        psi.apply_swap(0, 1);
        assert_eq!(psi.dominant_basis_state(), 0b10);
    }

    #[test]
    fn toffoli_truth_table() {
        let mut psi = StateVector::from_basis(3, 0b011);
        psi.apply_toffoli(0, 1, 2);
        assert_eq!(psi.dominant_basis_state(), 0b111);
        psi.apply_toffoli(0, 1, 2);
        assert_eq!(psi.dominant_basis_state(), 0b011);
    }

    #[test]
    fn measurement_collapses() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut psi = StateVector::new(1);
        psi.apply_h(0);
        let outcome = psi.measure(0, &mut rng);
        let expected = usize::from(outcome);
        assert!((psi.probability_of(expected) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ones = 0;
        for _ in 0..2000 {
            let mut psi = StateVector::new(1);
            psi.apply_h(0);
            if psi.measure(0, &mut rng) {
                ones += 1;
            }
        }
        let frac = f64::from(ones) / 2000.0;
        assert!((frac - 0.5).abs() < 0.05, "measured fraction {frac}");
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let psi = StateVector::from_amplitudes(vec![
            Complex::real(1.0),
            Complex::real(0.0),
            Complex::real(0.0),
            Complex::real(1.0),
        ]);
        for _ in 0..50 {
            let s = psi.sample(&mut rng);
            assert!(s == 0 || s == 3);
        }
    }

    #[test]
    fn fidelity_and_inner_product() {
        let mut a = StateVector::new(2);
        a.apply_h(0);
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        let mut c = StateVector::new(2);
        c.apply_x(1); // orthogonal to a
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn expectation_z() {
        let psi = StateVector::from_basis(1, 1);
        assert_eq!(psi.expectation_z(0), -1.0);
        let mut plus = StateVector::new(1);
        plus.apply_h(0);
        assert!(plus.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn normalization_in_from_amplitudes() {
        let psi = StateVector::from_amplitudes(vec![Complex::real(3.0), Complex::real(4.0)]);
        assert!((psi.norm() - 1.0).abs() < 1e-12);
        assert!((psi.probability_of(0) - 0.36).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gate_on_missing_qubit_panics() {
        let mut psi = StateVector::new(1);
        psi.apply_x(1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn cswap_duplicate_qubits_panics() {
        let mut psi = StateVector::new(3);
        psi.apply_cswap(0, 1, 1);
    }
}
