//! Hardware planning for a Fat-Tree QRAM chip (§4.2, Fig. 4).
//!
//! Prints the H-tree floorplan statistics, the intra-node wire-crossing
//! analysis motivating the two-plane chip, the on-chip plane assignment
//! with TSV counts, the modular bill of materials, and the
//! router-duplication ablation.
//!
//! Run with: `cargo run --example chip_floorplan`

use fat_tree_qram::arch::{HTreeLayout, ModularPlan, NodeLayout, OnChipPlan, PartialFatTree};
use fat_tree_qram::core::TreeShape;
use fat_tree_qram::metrics::{Capacity, TimingModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Capacity::new(32)?;
    let shape = TreeShape::new(capacity);
    println!("== Fat-Tree QRAM, capacity N = {capacity} (Fig. 3) ==");
    println!(
        "routers: {} (BB would use {}), root wires: {}",
        shape.fat_tree_router_count(),
        shape.bucket_brigade_router_count(),
        shape.root_wires()
    );
    for level in 0..capacity.address_width() {
        let wires = if level + 1 < capacity.address_width() {
            format!("{} wires to each child", shape.wires_to_child(level))
        } else {
            "leaf wires to classical cells".to_owned()
        };
        println!(
            "  level {level}: {:>2} nodes x {} routers, {wires}",
            1u64 << level,
            shape.routers_in_node(level),
        );
    }

    println!();
    println!("== H-tree floorplan ==");
    let layout = HTreeLayout::new(capacity);
    println!(
        "inter-node wire crossings: {} (planar embedding), total wire length {:.2}",
        layout.edge_crossings(),
        layout.total_wire_length()
    );

    println!();
    println!("== Intra-node wiring (Fig. 4(a), §4.2.2) ==");
    println!(
        "{:>8} {:>22} {:>22}",
        "routers", "1-plane crossings", "2-plane crossings"
    );
    for routers in 2..=8 {
        let node = NodeLayout::new(routers);
        println!(
            "{:>8} {:>22} {:>22}",
            routers,
            node.single_plane_crossings(),
            node.biplanar_crossings()
        );
    }

    println!();
    println!("== On-chip two-plane assignment (Fig. 4(d,e)) ==");
    let plan = OnChipPlan::new(capacity);
    let (p0, p1) = plan.node_split();
    println!(
        "plane 0: {p0} nodes, plane 1: {p1} nodes, TSVs: {} (alternation verified: {})",
        plan.tsv_count(),
        plan.verify_alternation()
    );

    println!();
    println!("== Modular bill of materials (Fig. 4(b,c)) ==");
    let modular = ModularPlan::new(capacity);
    let bom = modular.bom();
    println!(
        "modules: {}, cavities: {}, transmons: {}, beam splitters: {}, \
         couplers: {}, coax cables: {}",
        modular.module_count(),
        bom.cavities,
        bom.transmons,
        bom.beam_splitters,
        bom.couplers,
        bom.coax_cables
    );

    println!();
    println!("== Duplication ablation (BB -> Fat-Tree) ==");
    let timing = TimingModel::paper_default();
    let big = Capacity::new(1024)?;
    println!(
        "{:>4} {:>10} {:>14} {:>16}",
        "cap", "qubits", "parallelism", "bandwidth q/s"
    );
    for c in [1u32, 2, 4, 6, 8, 10] {
        let t = PartialFatTree::new(big, c);
        println!(
            "{:>4} {:>10} {:>14} {:>16.0}",
            c,
            t.qubit_count(),
            t.query_parallelism(),
            t.bandwidth(&timing).get()
        );
    }
    Ok(())
}
