//! Noise, error bounds, and virtual distillation (§8).
//!
//! Monte-Carlo-samples noisy query trajectories through the actual
//! instruction schedule, compares the empirical fidelity with the paper's
//! analytic `1 − 2·log²(N)·Σεᵢ` bound, and distills parallel noisy queries
//! into a high-fidelity result (Table 4).
//!
//! Run with: `cargo run --release --example noisy_queries`

use fat_tree_qram::core::FatTreeQram;
use fat_tree_qram::metrics::Capacity;
use fat_tree_qram::noise::{
    bounds, distilled_infidelity, estimate_query_fidelity, query_infidelity_bound,
    DistillationPlan, GateErrorRates,
};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);
    let rates = GateErrorRates::paper_default();
    println!(
        "gate error rates: e0 = {}, e1 = {}, e2 = {}",
        rates.e0, rates.e1, rates.e2
    );
    println!();
    println!(
        "{:>4} {:>10} {:>22} {:>22}",
        "n", "N", "empirical infidelity", "analytic bound 2n^2*Σε"
    );
    for n in [3u32, 4, 5, 6] {
        let capacity = Capacity::from_address_width(n);
        let qram = FatTreeQram::new(capacity);
        let cells: Vec<u64> = (0..capacity.get()).map(|i| i % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells)?;
        let address = AddressState::classical(n, 1)?;
        let est = estimate_query_fidelity(&qram, &memory, &address, &rates, 3000, &mut rng);
        println!(
            "{n:>4} {:>10} {:>18.4} ±{:.4} {:>22.4}",
            capacity.get(),
            1.0 - est.mean(),
            est.std_error(),
            query_infidelity_bound(&qram, &rates)
        );
    }

    // Virtual distillation: trade parallel queries for fidelity (§8.2).
    println!();
    let capacity = Capacity::new(16)?;
    let eps = bounds::fat_tree_query_infidelity(capacity, &GateErrorRates::from_cswap_rate(2e-3));
    println!(
        "capacity-16 Fat-Tree at e0 = 2e-3: single-query fidelity {:.3}",
        1.0 - eps
    );
    for copies in [1u32, 2, 4] {
        let plan = DistillationPlan::new(4, copies);
        println!(
            "  {copies} copies/group -> fidelity {:.6}, {} distilled queries in parallel",
            1.0 - distilled_infidelity(eps, copies),
            plan.parallel_groups
        );
    }
    Ok(())
}
