//! Parallel Grover search with a QRAM-backed oracle (§6.3, Fig. 9).
//!
//! A 16-cell database is split into `p = 4` segments; each segment runs
//! its own Grover iteration stream whose phase oracle is realized by a
//! quantum query to the shared memory. The example
//!
//! 1. runs the actual amplitude-amplification circuit on the state-vector
//!    simulator for one segment, finding the marked item;
//! 2. compares the *overall circuit depth* of the full parallel search on
//!    the five shared-QRAM architectures.
//!
//! Run with: `cargo run --example parallel_grover`

use fat_tree_qram::algos::{algorithm_depth, ParallelAlgorithm};
use fat_tree_qram::arch::Architecture;
use fat_tree_qram::core::{FatTreeQram, QramModel};
use fat_tree_qram::metrics::{Capacity, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::qsim::state::StateVector;

/// One Grover iteration restricted to a database segment: phase-flip the
/// marked addresses (QRAM oracle), then invert about the segment mean.
fn grover_iteration(psi: &mut StateVector, marked: &[u64], segment: &[u64]) {
    // Phase oracle: the QRAM writes x_i onto the bus; a Z on the bus
    // kicks a phase back onto marked addresses. Branch-equivalently,
    // negate marked amplitudes.
    let dim = psi.dim();
    let mut amps: Vec<_> = (0..dim).map(|i| psi.amplitude(i)).collect();
    for &m in marked {
        let idx = usize::try_from(m).expect("address fits");
        amps[idx] = -amps[idx];
    }
    // Diffusion over the segment subspace: 2|s⟩⟨s| − I.
    let mean = segment
        .iter()
        .map(|&i| amps[usize::try_from(i).expect("fits")])
        .fold(fat_tree_qram::qsim::Complex::ZERO, |a, b| a + b)
        / (segment.len() as f64);
    for &i in segment {
        let idx = usize::try_from(i).expect("fits");
        amps[idx] = mean * 2.0 - amps[idx];
    }
    *psi = StateVector::from_amplitudes(amps);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The shared database: cell 13 holds the marked record.
    let mut cells = vec![0u64; 16];
    cells[13] = 1;
    let memory = ClassicalMemory::from_words(1, &cells)?;
    let capacity = Capacity::new(16)?;
    let qram = FatTreeQram::new(capacity);

    // Segment 3 (addresses 12..16) contains the marked item. Its Grover
    // stream searches a 4-cell subspace: one iteration suffices.
    println!("segment search: addresses 12..16, looking for x_i = 1");
    let segment: Vec<u64> = (12..16).collect();
    // Discover marked cells through an actual QRAM query in superposition.
    let probe = AddressState::uniform(4, &segment)?;
    let outcome = qram.execute_query(&memory, &probe)?;
    let marked: Vec<u64> = outcome
        .iter()
        .filter(|&&(_, _, data)| data == 1)
        .map(|&(_, addr, _)| addr)
        .collect();
    println!("QRAM query marks addresses {marked:?}");

    // Amplitude amplification over the 4-qubit address register restricted
    // to the segment (uniform over 4 states → 1 Grover iteration).
    let mut psi = StateVector::from_amplitudes(
        (0..16)
            .map(|i| {
                if segment.contains(&(i as u64)) {
                    fat_tree_qram::qsim::Complex::real(0.5)
                } else {
                    fat_tree_qram::qsim::Complex::ZERO
                }
            })
            .collect(),
    );
    grover_iteration(&mut psi, &marked, &segment);
    let found = psi.dominant_basis_state();
    println!(
        "after 1 Grover iteration: P(|13⟩) = {:.3}, found address {found}",
        psi.probability_of(13)
    );
    assert_eq!(found, 13);
    assert!(psi.probability_of(13) > 0.99, "4-state Grover is exact");

    // Overall circuit depth of the full p = log N parallel search across
    // architectures (the Fig. 9 Grover panel, here at N = 1024).
    println!();
    println!("parallel Grover overall depth at N = 2^10 (weighted layers):");
    let big = Capacity::new(1024)?;
    let timing = TimingModel::paper_default();
    for arch in Architecture::ALL {
        let depth = algorithm_depth(ParallelAlgorithm::Grover, arch, big, timing);
        println!("  {:<12} {:>10.1}", arch.name(), depth.get());
    }
    Ok(())
}
