//! Quickstart: build a Fat-Tree QRAM, query it in superposition, and
//! inspect the pipeline and its performance metrics.
//!
//! Run with: `cargo run --example quickstart`

use fat_tree_qram::core::{BucketBrigadeQram, FatTreeQram, QramModel};
use fat_tree_qram::metrics::{Capacity, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A capacity-8 shared QRAM holding one classical bit per cell.
    let capacity = Capacity::new(8)?;
    let qram = FatTreeQram::new(capacity);
    let memory = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0])?;

    // Query the memory at addresses {0, 3, 5} in equal superposition:
    // |ψ⟩ = (|0⟩ + |3⟩ + |5⟩)/√3 ⊗ |0⟩_bus.
    let address = AddressState::uniform(3, &[0, 3, 5])?;
    let outcome = qram.execute_query(&memory, &address)?;
    println!("Eq. (1) query outcome (amplitude, address, data):");
    for (amp, addr, data) in outcome.iter() {
        println!("  {amp}  |{addr}⟩_A |{data}⟩_B");
    }
    let ideal = memory.ideal_query(&address);
    println!("fidelity vs ideal query: {:.12}", outcome.fidelity(&ideal));

    // Three queries pipelined — the Fig. 6 schedule.
    let schedule = qram.pipeline(3);
    schedule.validate_no_conflicts()?;
    println!();
    println!(
        "pipelined schedule: a new query every {} layers, single query {} layers",
        10,
        qram.single_query_layers_integer()
    );
    for t in schedule.timings() {
        println!(
            "  query {}: layers {:>2}..{:>2} (retrieval at {})",
            t.query + 1,
            t.start_layer,
            t.end_layer,
            t.retrieval_layer
        );
    }

    // Performance vs the sequential bucket-brigade baseline.
    let timing = TimingModel::paper_default();
    let bb = BucketBrigadeQram::new(capacity);
    println!();
    println!(
        "3 parallel queries: Fat-Tree {} layers vs BB {} layers",
        qram.parallel_queries_latency(3, &timing).get(),
        bb.parallel_queries_latency(3, &timing).get()
    );
    Ok(())
}
