//! A quantum-data-center scenario (§1, Fig. 1(a)): multiple QPUs issue
//! online queries to one shared QRAM; the FIFO scheduler admits them into
//! the Fat-Tree pipeline.
//!
//! Run with: `cargo run --example shared_memory_qdc`

use fat_tree_qram::arch::Architecture;
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::sched::{schedule_fifo, QramServer, QueryRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Capacity::new(1024)?;
    let timing = TimingModel::paper_default();
    let mut rng = StdRng::seed_from_u64(2026);

    // Eight QPUs each issue queries at random times over a 2 ms window
    // (~2000 standard layers at 1 µs per layer).
    let mut requests = Vec::new();
    for _qpu in 0..8 {
        let mut t = 0.0;
        for _ in 0..25 {
            t += rng.random_range(10.0..150.0);
            requests.push(QueryRequest {
                id: requests.len(),
                arrival: Layers::new(t),
            });
        }
    }
    println!("{} online query requests from 8 QPUs", requests.len());
    println!();
    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "architecture", "makespan", "mean latency", "p95 latency"
    );
    for arch in Architecture::ALL {
        let server = QramServer::for_architecture(arch, capacity, timing);
        let schedule = schedule_fifo(&requests, &server);
        let mut latencies: Vec<f64> = schedule
            .entries()
            .iter()
            .map(|e| e.response_latency().get())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean = latencies.iter().sum::<f64>() / latencies.len() as f64;
        let p95 = latencies[(latencies.len() * 95) / 100 - 1];
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>14.1}",
            arch.name(),
            schedule.makespan().get(),
            mean,
            p95
        );
    }
    println!();
    println!(
        "(layers; 1 layer = 1 µs at the paper's 10^6 CLOPS. The Fat-Tree \
         pipeline absorbs bursts that serialize on a bucket-brigade QRAM.)"
    );
    Ok(())
}
