//! A quantum-data-center scenario (§1, Fig. 1(a)), fleet edition: two
//! tenants share a fleet of Fat-Tree QRAM replicas behind the routing
//! tier — one tenant runs hot under an outstanding-request quota, the
//! other trickles along in a batch SLO class — while a memory write
//! replicates through the fleet mid-run.
//!
//! Run with: `cargo run --example shared_memory_qdc`

use fat_tree_qram::core::ShardedQram;
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{FifoAdmission, QuotaAdmission, SloClass, TenantId};
use fat_tree_qram::serve::{
    ConsistentHashPlacement, FleetConfig, FleetRequest, FleetWrite, QramFleet, ShedReason,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let capacity = Capacity::new(1024)?;
    let timing = TimingModel::paper_default();
    let mut rng = StdRng::seed_from_u64(2026);

    // Two tenants on an R = 2 fleet of K = 4 sharded Fat-Tree QRAMs:
    // tenant 0 ("hot") floods the fleet and is capped at 6 outstanding
    // queries; tenant 1 ("batch") trickles along in the Batch SLO class,
    // entitled to half of each replica's arrival queue.
    let hot = TenantId(0);
    let batch = TenantId(1);
    let policy = QuotaAdmission::new(FifoAdmission)
        .with_quota(hot, 6)
        .with_slo(batch, SloClass::Batch);
    let mut fleet = QramFleet::new(
        ShardedQram::fat_tree(capacity, 4),
        2,
        timing,
        policy,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity: Some(32),
            replication_lag: Layers::new(40.0),
        },
    );

    let mut requests = Vec::new();
    // The hot tenant: a dense open-loop stream over a 2 ms window.
    let mut t = 0.0;
    for _ in 0..160 {
        t += rng.random_range(0.5..12.0);
        requests.push(FleetRequest {
            id: requests.len(),
            tenant: hot,
            arrival: Layers::new(t),
            address: AddressState::classical(10, rng.random_range(0..1024))?,
        });
    }
    // The batch tenant: sparse sweeps.
    let mut t = 0.0;
    for _ in 0..40 {
        t += rng.random_range(10.0..60.0);
        requests.push(FleetRequest {
            id: requests.len(),
            tenant: batch,
            arrival: Layers::new(t),
            address: AddressState::classical(10, rng.random_range(0..1024))?,
        });
    }
    // Mid-run, cell 17 is rewritten at replica 0; replica 1 serves stale
    // (flagged) reads of it until replication lands 40 layers later.
    let write = FleetWrite {
        at: Layers::new(400.0),
        origin: 0,
        address: 17,
        value: 3,
    };

    let memory = ClassicalMemory::from_words(2, &vec![1u64; 1024])?;
    let report = fleet.serve(&memory, requests, vec![write])?;

    println!(
        "QRAM fleet: R = 2 replicas x K = 4 shards, capacity {} words",
        capacity.get()
    );
    println!(
        "{} queries served, {} shed (quota {}, SLO {}, queue {}), {} stale-flagged",
        report.completed().len(),
        report.shed().len(),
        report.shed_count(ShedReason::QuotaExceeded),
        report.shed_count(ShedReason::SloShed),
        report.shed_count(ShedReason::QueueFull),
        report.stale_served(),
    );
    println!(
        "fleet epoch {}, aggregate rate {:.0} queries/s",
        report.fleet_epoch(),
        report.query_rate().get()
    );
    println!();
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>14}",
        "tenant", "served", "p50 (µs)", "p95 (µs)", "p99 (µs)"
    );
    for (tenant, histogram) in report.per_tenant().iter() {
        println!(
            "{:<10} {:>8} {:>14.1} {:>14.1} {:>14.1}",
            tenant.to_string(),
            histogram.count(),
            timing.layers_to_micros(histogram.quantile(0.50)),
            timing.layers_to_micros(histogram.quantile(0.95)),
            timing.layers_to_micros(histogram.quantile(0.99)),
        );
    }
    println!();
    println!("{:<10} {:>10} {:>14}", "replica", "dispatched", "p99 (µs)");
    for (replica, histogram) in report.per_replica().iter() {
        println!(
            "{:<10} {:>10} {:>14.1}",
            format!("replica{replica}"),
            report.per_replica_dispatches()[replica],
            timing.layers_to_micros(histogram.quantile(0.99)),
        );
    }
    println!();
    println!(
        "(The quota keeps the hot tenant's queue shallow — its p99 stays \
         bounded while excess load sheds at the router; the batch tenant \
         rides in its SLO share. The mid-run write bumps the fleet epoch: \
         reads at the lagging replica are flagged stale, never silently \
         served as fresh.)"
    );
    Ok(())
}
