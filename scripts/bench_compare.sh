#!/usr/bin/env bash
# Diffs two bench_smoke.sh baselines (BENCH_*.json) into a per-target
# delta table: criterion ns/iter with speedup factors, and figure/table
# wall seconds.
#
# Usage: scripts/bench_compare.sh OLD.json NEW.json
#
# Report-only by design: the exit code reflects usage errors (missing or
# unreadable files), never a regression — CI prints the deltas without
# gating on them, since the shared runners are too noisy for hard perf
# thresholds. Gate manually on same-host A/B runs instead.
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: $0 OLD.json NEW.json" >&2
    exit 2
fi
OLD="$1"
NEW="$2"
for f in "$OLD" "$NEW"; do
    [ -r "$f" ] || { echo "cannot read baseline: $f" >&2; exit 2; }
done

python3 - "$OLD" "$NEW" <<'EOF'
import json, sys

old_path, new_path = sys.argv[1:3]
with open(old_path) as f:
    old = json.load(f)
with open(new_path) as f:
    new = json.load(f)


def label(baseline, path):
    commit = baseline.get("commit") or "?"
    return f"{path} ({commit})"


print(f"== bench delta: {label(old, old_path)} -> {label(new, new_path)} ==")

old_crit = old.get("criterion_ns_per_iter", {})
new_crit = new.get("criterion_ns_per_iter", {})
ids = sorted(set(old_crit) | set(new_crit))
if ids:
    width = max(len(i) for i in ids)
    print(f"\n{'criterion benchmark':<{width}}  {'old ns/iter':>14}  {'new ns/iter':>14}  {'speedup':>8}")
    for bench_id in ids:
        o, n = old_crit.get(bench_id), new_crit.get(bench_id)
        if o is None or n is None:
            status = "new" if o is None else "removed"
            o_cell = f"{o:14.1f}" if o is not None else f"{'-':>14}"
            n_cell = f"{n:14.1f}" if n is not None else f"{'-':>14}"
            print(f"{bench_id:<{width}}  {o_cell}  {n_cell}  {status:>8}")
            continue
        speedup = o / n if n else float("inf")
        print(f"{bench_id:<{width}}  {o:14.1f}  {n:14.1f}  {speedup:7.2f}x")
else:
    print("\n(no criterion measurements in either baseline)")

# Scalar rows (hit rates, availability, percentiles). Baselines written
# before the scalars section existed simply lack the key — .get() with a
# default keeps the diff working against any mix of old and new files.
old_scalars = old.get("scalars", {})
new_scalars = new.get("scalars", {})
ids = sorted(set(old_scalars) | set(new_scalars))
if ids:
    width = max(len(i) for i in ids)
    print(f"\n{'scalar':<{width}}  {'old':>14}  {'new':>14}")
    for scalar_id in ids:
        o, n = old_scalars.get(scalar_id), new_scalars.get(scalar_id)
        o_cell = f"{o:14.2f}" if o is not None else f"{'-':>14}"
        n_cell = f"{n:14.2f}" if n is not None else f"{'-':>14}"
        status = ""
        if o is None:
            status = "  (new)"
        elif n is None:
            status = "  (removed)"
        print(f"{scalar_id:<{width}}  {o_cell}  {n_cell}{status}")

old_fig = old.get("figure_table_targets", {})
new_fig = new.get("figure_table_targets", {})
# Union, not intersection: a bench that exists in only one baseline (a
# target added or retired between PRs) is reported as new/removed rather
# than silently dropped.
ids = sorted(set(old_fig) | set(new_fig))
if ids:
    width = max(len(i) for i in ids)
    print(f"\n{'figure/table target':<{width}}  {'old wall s':>11}  {'new wall s':>11}")
    for target in ids:
        o, n = old_fig.get(target), new_fig.get(target)
        if o is None or n is None:
            status = "  (new)" if o is None else "  (removed)"
            o_cell = f"{o['wall_seconds']:11.3f}" if o is not None else f"{'-':>11}"
            n_cell = f"{n['wall_seconds']:11.3f}" if n is not None else f"{'-':>11}"
            print(f"{target:<{width}}  {o_cell}  {n_cell}{status}")
            continue
        flag = "" if o.get("ok") and n.get("ok") else "  (FAILED run)"
        print(f"{target:<{width}}  {o['wall_seconds']:11.3f}  {n['wall_seconds']:11.3f}{flag}")
EOF
