#!/usr/bin/env bash
# Bench smoke run: executes one fast target per figure/table of the paper
# plus the criterion micro-benchmarks, and writes a JSON perf baseline.
#
# Usage: scripts/bench_smoke.sh [--targets t1,t2,...] [output.json]
#   output.json defaults to BENCH_seed.json.
#   --targets filters both the figure/table targets and the criterion
#   targets (perf, sharded, parallel_exec, cache_hit, compiled_exec,
#   columnar_exec, serving, fleet, fleet_faults, recovery, durability)
#   by name, e.g.
#   --targets fig9,sharded. The parallel_exec target is built with the
#   `parallel` cargo feature so its A/B pairs compare the scoped-thread
#   executor against the sequential reference in one binary.
#
# Figure/table targets are plain reproduction binaries (harness = false)
# whose wall time is recorded; the criterion targets run the vendored
# criterion harness with a reduced measurement budget and report
# ns/iter per benchmark via the CRITERION_JSON hook.
set -euo pipefail

cd "$(dirname "$0")/.."

FIGURE_TARGETS=(fig1 fig2 fig6 fig7 fig8 fig9 fig10 fig11 fig12
                table1 table2 table3 table4 table5 ablation)
CRITERION_TARGETS=(perf sharded parallel_exec cache_hit compiled_exec columnar_exec serving fleet fleet_faults recovery durability)

# Cargo feature flags needed by specific criterion targets.
target_features() {
    case "$1" in
        parallel_exec) echo "--features parallel" ;;
        *) echo "" ;;
    esac
}

FILTER=""
OUT=""
while [ $# -gt 0 ]; do
    case "$1" in
        --targets)
            [ $# -ge 2 ] || { echo "--targets needs a comma-separated list" >&2; exit 2; }
            FILTER="$2"
            shift 2
            ;;
        --targets=*)
            FILTER="${1#--targets=}"
            shift
            ;;
        -*)
            echo "unknown option: $1" >&2
            exit 2
            ;;
        *)
            [ -z "$OUT" ] || { echo "unexpected extra argument: $1" >&2; exit 2; }
            OUT="$1"
            shift
            ;;
    esac
done
OUT="${OUT:-BENCH_seed.json}"
mkdir -p "$(dirname "$OUT")" 2>/dev/null || true

# A typo in --targets must fail loudly, not record an empty baseline.
# Exact string comparison: glob metacharacters in an entry must not
# sneak past validation only to match nothing in selected().
if [ -n "$FILTER" ]; then
    IFS=',' read -ra FILTER_ENTRIES <<<"$FILTER"
    for entry in "${FILTER_ENTRIES[@]}"; do
        known=false
        for target in "${FIGURE_TARGETS[@]}" "${CRITERION_TARGETS[@]}"; do
            if [ "$entry" = "$target" ]; then
                known=true
                break
            fi
        done
        if [ "$known" = false ]; then
            echo "unknown target in --targets: '$entry'" >&2
            echo "known targets: ${FIGURE_TARGETS[*]} ${CRITERION_TARGETS[*]}" >&2
            exit 2
        fi
    done
fi

# Applies the --targets filter (no filter = keep everything).
selected() {
    local target="$1"
    [ -z "$FILTER" ] && return 0
    case ",$FILTER," in
        *",$target,"*) return 0 ;;
        *) return 1 ;;
    esac
}

echo "== building bench targets =="
cargo bench -p qram-bench --no-run >/dev/null 2>&1
cargo bench -p qram-bench --features parallel --no-run >/dev/null 2>&1

TMP_WALL="$(mktemp)"
TMP_CRIT="$(mktemp)"
trap 'rm -f "$TMP_WALL" "$TMP_CRIT"' EXIT

for target in "${FIGURE_TARGETS[@]}"; do
    selected "$target" || continue
    start="$(date +%s.%N)"
    if cargo bench -p qram-bench --bench "$target" >/dev/null 2>&1; then
        ok=true
    else
        ok=false
    fi
    end="$(date +%s.%N)"
    echo "$target $ok $(echo "$end $start" | awk '{printf "%.3f", $1 - $2}')" >>"$TMP_WALL"
    echo "ran $target"
done

for target in "${CRITERION_TARGETS[@]}"; do
    selected "$target" || continue
    echo "== criterion micro-benchmarks: $target (reduced budget) =="
    # shellcheck disable=SC2046  # intentional word splitting of the flags
    CRITERION_JSON="$TMP_CRIT" CRITERION_BUDGET_MS="${CRITERION_BUDGET_MS:-60}" \
        cargo bench -p qram-bench $(target_features "$target") --bench "$target" 2>/dev/null \
        | grep -E '^(bench:|==|headline)' || true
done

python3 - "$OUT" "$TMP_WALL" "$TMP_CRIT" <<'EOF'
import json, subprocess, sys

out_path, wall_path, crit_path = sys.argv[1:4]

targets = {}
with open(wall_path) as f:
    for line in f:
        name, ok, secs = line.split()
        targets[name] = {"ok": ok == "true", "wall_seconds": float(secs)}

# Criterion timing rows carry "ns_per_iter"; bench-emitted scalar rows
# (hit rates, availability, percentiles) carry "scalar" and land in
# their own baseline section.
criterion = []
scalars = {}
with open(crit_path) as f:
    for line in f:
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        if "scalar" in row:
            scalars[row["id"]] = row["scalar"]
        else:
            criterion.append(row)

commit = subprocess.run(
    ["git", "rev-parse", "--short", "HEAD"], capture_output=True, text=True
).stdout.strip() or None

baseline = {
    "schema": "fat-tree-qram-bench-smoke/v1",
    "commit": commit,
    "figure_table_targets": targets,
    "criterion_ns_per_iter": {c["id"]: c["ns_per_iter"] for c in criterion},
    "scalars": scalars,
}
with open(out_path, "w") as f:
    json.dump(baseline, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    f"wrote {out_path}: {len(targets)} targets, "
    f"{len(criterion)} criterion benches, {len(scalars)} scalars"
)
EOF
