//! Fat-Tree QRAM — umbrella crate re-exporting the whole workspace.
//!
//! A reproduction of *"Fat-Tree QRAM: A High-Bandwidth Shared Quantum
//! Random Access Memory for Parallel Queries"* (Xu, Lu & Ding, ASPLOS '25).
//!
//! The implementation is organized as focused crates, re-exported here so
//! applications can depend on a single package:
//!
//! * [`qsim`] — quantum simulation substrate (state-vector, qudit,
//!   branch-based, density-matrix simulators and noise channels).
//! * [`metrics`] — units and shared-QRAM performance metrics.
//! * [`core`] — Bucket-Brigade and Fat-Tree QRAM models, instruction
//!   schedules, query pipelining, and functional execution.
//! * [`arch`] — resource estimation and physical layout (H-tree, modular,
//!   on-chip bi-planar).
//! * [`sched`] — the pluggable scheduling stack (FIFO and noise-aware
//!   policies over one admission core) and pipelined-server simulation.
//! * [`serve`] — the event-driven online serving layer: the §5
//!   quantum-data-center service on sharded backends.
//! * [`noise`] — fidelity bounds, QEC cost models, virtual distillation.
//! * [`algos`] — parallel-algorithm workloads and per-architecture
//!   executors.
//!
//! # Quickstart
//!
//! ```
//! use fat_tree_qram::core::{FatTreeQram, QramModel};
//! use fat_tree_qram::metrics::Capacity;
//! use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
//!
//! // A capacity-8 Fat-Tree QRAM serving a superposed query.
//! let capacity = Capacity::new(8)?;
//! let qram = FatTreeQram::new(capacity);
//! let memory = ClassicalMemory::from_words(1, &[1, 0, 0, 1, 1, 0, 1, 0])?;
//! let address = AddressState::uniform(3, &[0, 3, 5])?;
//! let outcome = qram.execute_query(&memory, &address)?;
//! assert_eq!(outcome.data_for(0), Some(1));
//! assert_eq!(outcome.data_for(5), Some(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use qram_algos as algos;
pub use qram_arch as arch;
pub use qram_core as core;
pub use qram_metrics as metrics;
pub use qram_noise as noise;
pub use qram_sched as sched;
pub use qram_serve as serve;
pub use qsim;
