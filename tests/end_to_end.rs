//! Cross-crate integration tests: core models, architecture cost models,
//! scheduler, and noise analysis working together.

use fat_tree_qram::arch::{Architecture, CostModel};
use fat_tree_qram::core::{BucketBrigadeQram, FatTreeQram, QramModel};
use fat_tree_qram::metrics::{Capacity, LayerKind, Layers, TimingModel};
use fat_tree_qram::noise::{bounds, GateErrorRates};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{simulate_streams, QramServer, StreamWorkload};

fn paper_timing() -> TimingModel {
    TimingModel::paper_default()
}

/// The generated instruction schedules must agree with the closed-form
/// latencies of Table 1, layer kind by layer kind.
#[test]
fn schedule_durations_match_closed_forms() {
    let timing = paper_timing();
    for n in 1..=10u32 {
        let capacity = Capacity::from_address_width(n);
        let ft = FatTreeQram::new(capacity);
        let weighted: f64 = ft
            .query_layers()
            .iter()
            .map(|l| timing.layer_weight(l.kind))
            .sum();
        assert!(
            (weighted - ft.single_query_latency(&timing).get()).abs() < 1e-9,
            "fat-tree n={n}"
        );
        let bb = BucketBrigadeQram::new(capacity);
        let weighted: f64 = bb
            .query_layers()
            .iter()
            .map(|l| timing.layer_weight(l.kind))
            .sum();
        assert!(
            (weighted - bb.single_query_latency(&timing).get()).abs() < 1e-9,
            "bb n={n}"
        );
    }
}

/// The pipelined executor, the schedule object, and the scheduler's server
/// model must tell the same story about batch latency.
#[test]
fn pipeline_schedule_scheduler_agree() {
    let capacity = Capacity::new(256).unwrap();
    let ft = FatTreeQram::new(capacity);
    let timing = paper_timing();
    for q in [1usize, 3, 8, 20] {
        let schedule = ft.pipeline(q);
        let via_formula = ft.parallel_queries_latency(q as u32, &timing);
        assert!(
            schedule.makespan(&timing).approx_eq(via_formula, 1e-9),
            "q={q}"
        );
        // Integer-layer server simulation of q back-to-back queries.
        let server = QramServer::fat_tree_integer_layers(capacity);
        let streams = vec![StreamWorkload::alternating(1, Layers::ZERO); q];
        let report = simulate_streams(&streams, &server);
        assert_eq!(
            report.makespan().get(),
            schedule.makespan_integer() as f64,
            "q={q}"
        );
    }
}

/// Functional pipelined execution returns Eq. (1) outcomes for every query
/// while the underlying schedule is conflict-free.
#[test]
fn pipelined_queries_are_functionally_correct() {
    let capacity = Capacity::new(64).unwrap();
    let ft = FatTreeQram::new(capacity);
    let cells: Vec<u64> = (0..64u64).map(|i| (i * i + 3) % 16).collect();
    let memory = ClassicalMemory::from_words(4, &cells).unwrap();
    let addresses: Vec<AddressState> = (0..6u64)
        .map(|q| AddressState::uniform(6, &[q, q + 10, q + 33, 63 - q]).unwrap())
        .collect();
    let outcomes = ft.execute_queries(&memory, &addresses, &[]).unwrap();
    for (q, outcome) in outcomes.iter().enumerate() {
        let ideal = memory.ideal_query(&addresses[q]);
        assert!((outcome.fidelity(&ideal) - 1.0).abs() < 1e-12, "query {q}");
    }
}

/// The cost model's bandwidth must equal what the closed-loop simulator
/// actually sustains at saturation.
#[test]
fn cost_model_bandwidth_matches_simulated_throughput() {
    let capacity = Capacity::new(1024).unwrap();
    let timing = paper_timing();
    for arch in [Architecture::FatTree, Architecture::BucketBrigade] {
        let model = CostModel::new(arch, capacity, timing);
        let server = QramServer::for_architecture(arch, capacity, timing);
        // Saturate: 40 streams of pure queries.
        let streams = vec![StreamWorkload::alternating(20, Layers::ZERO); 40];
        let report = simulate_streams(&streams, &server);
        let queries = 40.0 * 20.0;
        let seconds = timing.layers_to_seconds(report.makespan());
        let simulated_rate = queries / seconds;
        let model_rate = model.max_query_rate().get();
        let rel = (simulated_rate - model_rate).abs() / model_rate;
        assert!(
            rel < 0.05,
            "{arch}: simulated {simulated_rate} vs model {model_rate}"
        );
    }
}

/// Fidelity bounds and gate counts must be consistent: the executor's
/// per-branch gate counts, multiplied by the error rates, land within the
/// analytic 2n²Σε bound.
#[test]
fn gate_counts_consistent_with_fidelity_bound() {
    let rates = GateErrorRates::paper_default();
    // The 2n²Σε bound is asymptotic; at n = 2 low-order terms dominate.
    for n in 3..=8u32 {
        let capacity = Capacity::from_address_width(n);
        let ft = FatTreeQram::new(capacity);
        let cells: Vec<u64> = vec![0; 1 << n];
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let address = AddressState::classical(n, 0).unwrap();
        let exec = ft.execute_query_traced(&memory, &address).unwrap();
        let counts = exec.gate_counts;
        let first_order = counts.cswap as f64 * rates.e0
            + counts.inter_node_swap as f64 * rates.e1
            + counts.local_swap as f64 * rates.e2;
        let bound = bounds::fat_tree_query_infidelity(capacity, &rates);
        assert!(
            first_order <= bound * 1.05,
            "n={n}: first-order infidelity {first_order} above bound {bound}"
        );
        assert!(
            first_order >= bound * 0.25,
            "n={n}: first-order infidelity {first_order} implausibly small vs {bound}"
        );
    }
}

/// Memory writes respect the classical-swap budget semantics: a write
/// landing between two retrievals is seen by exactly the later queries.
#[test]
fn classical_memory_swap_visibility() {
    let capacity = Capacity::new(16).unwrap();
    let ft = FatTreeQram::new(capacity);
    let memory = ClassicalMemory::zeros(16);
    let addresses: Vec<AddressState> = (0..4)
        .map(|_| AddressState::classical(4, 9).unwrap())
        .collect();
    // Retrieval layers: 10q + 5n = 20, 30, 40, 50.
    let outcomes = ft
        .execute_queries(&memory, &addresses, &[(35, 9, 1)])
        .unwrap();
    assert_eq!(outcomes[0].data_for(9), Some(0));
    assert_eq!(outcomes[1].data_for(9), Some(0));
    assert_eq!(outcomes[2].data_for(9), Some(1));
    assert_eq!(outcomes[3].data_for(9), Some(1));
}

/// The weighted layer accounting matches the paper: standard layers weigh
/// 1, swap/classical layers 1/8, and the Fat-Tree stream contains exactly
/// 8n standard + (2n−1) intra-node layers.
#[test]
fn layer_kind_census() {
    for n in 1..=9u32 {
        let ft = FatTreeQram::new(Capacity::from_address_width(n));
        let layers = ft.query_layers();
        let standard = layers
            .iter()
            .filter(|l| l.kind == LayerKind::Standard)
            .count();
        let intra = layers
            .iter()
            .filter(|l| l.kind == LayerKind::IntraNode)
            .count();
        assert_eq!(standard, 8 * n as usize);
        assert_eq!(intra, 2 * n as usize - 1);
    }
}
