//! Fleet-layer integration properties: the routing tier must degenerate
//! exactly to the single service at `R = 1`, the epoch-replication
//! consistency model must hold under arbitrary write/read interleavings,
//! and placement must honour its fairness and no-needless-shed pins.

use fat_tree_qram::core::ShardedQram;
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{FifoAdmission, QueryRequest, QuotaAdmission, TenantId};
use fat_tree_qram::serve::{
    ConsistentHashPlacement, FleetConfig, FleetQuery, FleetRequest, FleetWrite,
    LeastLoadedPlacement, PlacementPolicy, QramFleet, QramService, ReplicaLoad, ServiceConfig,
    ServiceRequest, ShedReason,
};
use proptest::prelude::*;

/// Deterministic pseudo-random arrivals (already sorted) from integer
/// strategy inputs, shaped like a mildly bursty open-loop trace.
fn arrivals_from_gaps(gaps: &[u16]) -> Vec<QueryRequest> {
    let mut t = 0.0;
    gaps.iter()
        .enumerate()
        .map(|(id, &g)| {
            t += f64::from(g) / 16.0;
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

fn checkerboard(n: u64) -> ClassicalMemory {
    let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).unwrap()
}

proptest! {
    /// The ISSUE-7 reduction pin: a single-replica fleet under the default
    /// tenant is bit-equal to `QramService` — identical dispatch timings,
    /// identical query outcomes, identical shedding — for K ∈ {1, 2, 4, 8}
    /// and with or without a bounded arrival queue.
    #[test]
    fn single_replica_fleet_is_bit_equal_to_the_service(
        gaps in prop::collection::vec(0u16..100, 1..40),
        addr_seeds in prop::collection::vec(0u64..256, 1..40),
        k_exp in 0u32..=3,
        queue_cap_raw in 0usize..12,
    ) {
        // 0 means "unbounded"; bounded caps are 1..=11.
        let queue_cap = (queue_cap_raw > 0).then_some(queue_cap_raw);
        let capacity = Capacity::new(256).unwrap();
        let timing = TimingModel::paper_default();
        let k = 1u32 << k_exp;
        let requests = arrivals_from_gaps(&gaps);
        let memory = checkerboard(256);
        let address = |id: usize| {
            AddressState::classical(8, addr_seeds[id % addr_seeds.len()]).unwrap()
        };

        let mut service = QramService::new(
            ShardedQram::fat_tree(capacity, k),
            timing,
            FifoAdmission,
            ServiceConfig { queue_capacity: queue_cap },
        );
        let service_report = service
            .serve(
                &memory,
                requests.iter().map(|r| ServiceRequest {
                    id: r.id,
                    arrival: r.arrival,
                    address: address(r.id),
                }),
            )
            .unwrap();

        let mut fleet = QramFleet::new(
            ShardedQram::fat_tree(capacity, k),
            1,
            timing,
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: queue_cap,
                replication_lag: Layers::ZERO,
            },
        );
        let fleet_report = fleet
            .serve(
                &memory,
                requests.iter().map(|r| FleetRequest {
                    id: r.id,
                    tenant: TenantId::DEFAULT,
                    arrival: r.arrival,
                    address: address(r.id),
                }),
                Vec::new(),
            )
            .unwrap();

        // Timings: the realized schedules match entry for entry.
        let fleet_schedule = fleet_report.schedule();
        let service_schedule = service_report.schedule();
        prop_assert_eq!(fleet_schedule.entries(), service_schedule.entries());
        // Outcomes: semantically equal, pairwise, in the same order.
        prop_assert_eq!(fleet_report.outcomes(), service_report.outcomes());
        // Shedding: the same requests are refused, in the same order.
        let fleet_shed: Vec<usize> = fleet_report.shed().iter().map(|s| s.id).collect();
        prop_assert_eq!(&fleet_shed[..], service_report.rejected());
        prop_assert!(fleet_report
            .shed()
            .iter()
            .all(|s| s.reason == ShedReason::SloShed || s.reason == ShedReason::QueueFull));
        // Every fleet query ran at epoch 0, fresh.
        prop_assert!(fleet_report.completed().iter().all(|c| c.epoch == 0 && !c.stale));
        prop_assert_eq!(fleet_report.stale_served(), 0);
    }

    /// The epoch-replication consistency model, against an independent
    /// replay oracle. For every served query: the recorded epoch is
    /// exactly the log prefix its replica had applied at dispatch (own
    /// writes synchronously, remote writes one lag later, and an origin
    /// commit drags the whole earlier prefix with it); the outcome is the
    /// value under exactly that prefix; and the stale flag is set iff the
    /// prefix trailed the fleet epoch — a write at any replica makes every
    /// later fleet read either observe the new epoch or be flagged, never
    /// silently served as fresh.
    #[test]
    fn replication_epochs_and_stale_flags_match_the_oracle(
        gaps in prop::collection::vec(0u16..120, 4..32),
        addr_seeds in prop::collection::vec(0u64..16, 4..32),
        write_seeds in prop::collection::vec(0u64..9_000_000, 1..6),
        r in 2usize..=4,
        lag in 0u16..400,
    ) {
        let capacity = Capacity::new(16).unwrap();
        let timing = TimingModel::paper_default();
        let lag = Layers::new(f64::from(lag));
        // Strictly increasing, non-binary-fraction commit instants: never
        // tie with an arrival or a dispatch instant (those are sums of
        // binary fractions), so the strict-inequality oracle is exact.
        let mut t = 0.0;
        let writes: Vec<FleetWrite> = write_seeds
            .iter()
            .map(|&seed| {
                t += (seed % 1500) as f64 / 16.0 + 0.333;
                FleetWrite {
                    at: Layers::new(t),
                    origin: (seed / 1500) as usize % r,
                    address: (seed / 6000) % 16,
                    value: 1 + (seed / 96_000) % 199,
                }
            })
            .collect();

        let base: Vec<u64> = (0..16).map(|i| i % 2).collect();
        let memory = ClassicalMemory::from_words(8, &base).unwrap();
        let requests: Vec<FleetRequest> = arrivals_from_gaps(&gaps)
            .into_iter()
            .map(|q| FleetRequest {
                id: q.id,
                tenant: TenantId::DEFAULT,
                arrival: q.arrival,
                address: AddressState::classical(4, addr_seeds[q.id % addr_seeds.len()]).unwrap(),
            })
            .collect();

        let mut fleet = QramFleet::new(
            ShardedQram::fat_tree(capacity, 1),
            r,
            timing,
            FifoAdmission,
            ConsistentHashPlacement,
            FleetConfig {
                queue_capacity: None,
                replication_lag: lag,
            },
        );
        let report = fleet.serve(&memory, requests, writes.clone()).unwrap();

        prop_assert_eq!(report.completed().len(), gaps.len());
        prop_assert_eq!(report.fleet_epoch(), writes.len() as u64);

        // Oracle: the applied epoch of `replica` at instant `t` is the
        // larger of (a) the epoch of its last own-origin commit before
        // `t` (committing applies the full log prefix) and (b) the number
        // of writes whose replication instant `at + lag` has passed.
        let applied_at = |replica: usize, t: Layers| -> u64 {
            let own = writes
                .iter()
                .enumerate()
                .filter(|(_, w)| w.origin == replica && w.at < t)
                .map(|(i, _)| i as u64 + 1)
                .max()
                .unwrap_or(0);
            let replicated = writes.iter().filter(|w| w.at + lag < t).count() as u64;
            own.max(replicated)
        };
        let committed_at = |t: Layers| -> u64 {
            writes.iter().filter(|w| w.at < t).count() as u64
        };
        let value_at = |address: u64, epoch: u64| -> u64 {
            writes[..epoch as usize]
                .iter()
                .rev()
                .find(|w| w.address == address)
                .map_or(base[address as usize], |w| w.value)
        };

        for (query, outcome) in report.completed().iter().zip(report.outcomes()) {
            let expected_epoch = applied_at(query.replica, query.start);
            prop_assert_eq!(query.epoch, expected_epoch);
            let expected_stale = expected_epoch < committed_at(query.start);
            prop_assert_eq!(query.stale, expected_stale);
            let address = addr_seeds[query.id % addr_seeds.len()];
            prop_assert_eq!(
                outcome.data_for(address),
                Some(value_at(address, expected_epoch))
            );
        }
        let flagged = report.completed().iter().filter(|c| c.stale).count() as u64;
        prop_assert_eq!(report.stale_served(), flagged);
    }

    /// The ISSUE-7 fairness pin: consistent-hash placement over a uniform
    /// cyclic address sweep dispatches within one query of evenly across
    /// every fleet size R ∈ {1, 2, 4, 8}, whatever the arrival pattern.
    #[test]
    fn consistent_hash_is_exactly_fair_on_uniform_addresses(
        gaps in prop::collection::vec(0u16..50, 1..80),
        r_exp in 0u32..=3,
    ) {
        let r = 1usize << r_exp;
        let capacity = Capacity::new(64).unwrap();
        let timing = TimingModel::paper_default();
        let mut fleet = QramFleet::fifo(ShardedQram::fat_tree(capacity, 2), r, timing);
        let requests: Vec<FleetRequest> = arrivals_from_gaps(&gaps)
            .into_iter()
            .map(|q| FleetRequest {
                id: q.id,
                tenant: TenantId::DEFAULT,
                arrival: q.arrival,
                address: AddressState::classical(6, q.id as u64 % 64).unwrap(),
            })
            .collect();
        let total = requests.len() as u64;
        let report = fleet.serve(&checkerboard(64), requests, Vec::new()).unwrap();
        let counts = report.per_replica_dispatches();
        prop_assert_eq!(counts.len(), r);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        prop_assert!(max - min <= 1, "unfair placement: {:?}", counts);
    }

    /// The no-needless-shed regression: least-loaded placement never
    /// routes to a replica whose queue is full while another still has
    /// room — checked at every single placement decision under random
    /// burst traffic, and globally by conservation of requests.
    #[test]
    fn least_loaded_never_routes_to_a_full_replica_while_another_has_room(
        gaps in prop::collection::vec(0u16..30, 4..60),
        r in 2usize..=4,
        queue_cap in 1usize..6,
    ) {
        /// Wraps the production policy and pins the invariant at the exact
        /// moment of each decision.
        struct PinnedLeastLoaded;
        impl PlacementPolicy for PinnedLeastLoaded {
            fn place(&self, request: &FleetRequest, loads: &[ReplicaLoad]) -> usize {
                let choice = LeastLoadedPlacement.place(request, loads);
                assert!(
                    loads[choice].has_room || loads.iter().all(|l| !l.has_room),
                    "routed to a shedding replica while another had room: {loads:?}"
                );
                choice
            }
        }

        let capacity = Capacity::new(64).unwrap();
        let timing = TimingModel::paper_default();
        let mut fleet = QramFleet::new(
            ShardedQram::fat_tree(capacity, 2),
            r,
            timing,
            FifoAdmission,
            PinnedLeastLoaded,
            FleetConfig {
                queue_capacity: Some(queue_cap),
                replication_lag: Layers::ZERO,
            },
        );
        let requests: Vec<FleetRequest> = arrivals_from_gaps(&gaps)
            .into_iter()
            .map(|q| FleetRequest {
                id: q.id,
                tenant: TenantId::DEFAULT,
                arrival: q.arrival,
                address: AddressState::classical(6, (q.id as u64 * 37) % 64).unwrap(),
            })
            .collect();
        let total = requests.len();
        let report = fleet.serve(&checkerboard(64), requests, Vec::new()).unwrap();
        prop_assert_eq!(report.completed().len() + report.shed().len(), total);
        // A queue-full shed can only coexist with every replica saturated,
        // so until the first shed, dispatch counts track placement.
        prop_assert!(report
            .shed()
            .iter()
            .all(|s| s.reason == ShedReason::QueueFull));
    }

    /// Tenant quotas bound the hot tenant's footprint: across any flood,
    /// its accepted queries never overlap more than `quota` deep in
    /// [arrival, finish) — the queueing depth behind its p99 — while the
    /// well-behaved tenant is never shed for quota.
    #[test]
    fn quota_bounds_the_hot_tenants_outstanding_overlap(
        hot_burst in 8usize..40,
        quota in 1u32..6,
    ) {
        let capacity = Capacity::new(64).unwrap();
        let timing = TimingModel::paper_default();
        let hot = TenantId(1);
        let cold = TenantId(0);
        let policy = QuotaAdmission::new(FifoAdmission).with_quota(hot, quota);
        let mut fleet = QramFleet::new(
            ShardedQram::fat_tree(capacity, 2),
            2,
            timing,
            policy,
            ConsistentHashPlacement,
            FleetConfig::default(),
        );
        // The hot tenant floods at t = 0; the cold tenant trickles.
        let mut requests: Vec<FleetRequest> = (0..hot_burst)
            .map(|id| FleetRequest {
                id,
                tenant: hot,
                arrival: Layers::ZERO,
                address: AddressState::classical(6, id as u64 % 64).unwrap(),
            })
            .collect();
        for i in 0..8usize {
            requests.push(FleetRequest {
                id: hot_burst + i,
                tenant: cold,
                arrival: Layers::new(20.0 * i as f64),
                address: AddressState::classical(6, (i as u64 * 11) % 64).unwrap(),
            });
        }
        let report = fleet.serve(&checkerboard(64), requests, Vec::new()).unwrap();

        // Sweep the hot tenant's [arrival, finish) intervals for the peak
        // overlap — the router must have kept it at or below the quota.
        let hot_queries: Vec<&FleetQuery> = report
            .completed()
            .iter()
            .filter(|c| c.tenant == hot)
            .collect();
        let peak = hot_queries
            .iter()
            .map(|q| {
                hot_queries
                    .iter()
                    .filter(|o| o.arrival <= q.arrival && q.arrival < o.finish)
                    .count() as u32
            })
            .max()
            .unwrap_or(0);
        prop_assert!(peak <= quota, "hot tenant overlap {} exceeds quota {}", peak, quota);
        // Quota sheds hit the hot tenant only; the cold tenant completes
        // everything.
        prop_assert!(report.shed().iter().all(|s| s.tenant == hot
            && s.reason == ShedReason::QuotaExceeded));
        prop_assert_eq!(report.per_tenant().get(cold).unwrap().count(), 8);
    }
}

#[test]
fn flash_crowd_with_quota_keeps_the_hot_tenant_p99_bounded() {
    // The §5 multi-tenant story end to end: a flash crowd from one tenant
    // under quota cannot build an unbounded queue, so its p99 stays within
    // the quota-depth bound while an unlimited flood's p99 blows past it.
    use fat_tree_qram::sched::flash_crowd_arrivals;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let capacity = Capacity::new(4096).unwrap();
    let timing = TimingModel::paper_default();
    let hot = TenantId(7);
    let run = |quota: Option<u32>| {
        let mut policy = QuotaAdmission::new(FifoAdmission);
        if let Some(q) = quota {
            policy = policy.with_quota(hot, q);
        }
        let mut fleet = QramFleet::new(
            ShardedQram::fat_tree(capacity, 4),
            2,
            timing,
            policy,
            ConsistentHashPlacement,
            FleetConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(20260808);
        // Aggregate fleet service rate ≈ R · K / I_shard; flash at 6×.
        let aggregate = 2.0 * 4.0 / 8.25;
        let arrivals = flash_crowd_arrivals(
            0.2 * aggregate,
            6.0 * aggregate,
            200.0,
            400.0,
            300,
            &mut rng,
        );
        let requests: Vec<FleetRequest> = arrivals
            .iter()
            .map(|r| FleetRequest {
                id: r.id,
                tenant: hot,
                arrival: r.arrival,
                address: AddressState::classical(12, (r.id as u64 * 1103) % 4096).unwrap(),
            })
            .collect();
        fleet
            .serve(&ClassicalMemory::zeros(4096), requests, Vec::new())
            .unwrap()
    };

    let quota = 8u32;
    let capped = run(Some(quota));
    let uncapped = run(None);
    assert_eq!(
        uncapped.completed().len(),
        300,
        "unlimited tenant queues everything"
    );
    assert!(
        capped.shed_count(ShedReason::QuotaExceeded) > 0,
        "the flash crowd must hit the quota"
    );

    // With at most `quota` outstanding, a query waits behind fewer than
    // `quota` own dispatches: p99 < quota · I/K + latency.
    let server = QramFleet::fifo(ShardedQram::fat_tree(capacity, 4), 2, timing).equivalent_server();
    let bound = server.interval().get() * f64::from(quota) + server.latency().get();
    let capped_p99 = capped.per_tenant().get(hot).unwrap().p99().unwrap();
    let uncapped_p99 = uncapped.per_tenant().get(hot).unwrap().p99().unwrap();
    assert!(
        capped_p99.get() <= bound,
        "quota-capped p99 {} must stay within the quota-depth bound {}",
        capped_p99.get(),
        bound
    );
    assert!(
        uncapped_p99 > capped_p99,
        "the unlimited flood must queue deeper: {uncapped_p99:?} vs {capped_p99:?}"
    );
}
