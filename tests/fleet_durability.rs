//! Durability suite for the fleet: the crash-consistent WAL + checkpoint
//! store behind `serve_durable`, rejoin-from-disk, and the anti-entropy
//! scrubber. The headline properties:
//!
//! * A replica whose memory silently diverges ([`Fault::DiskCorrupt`])
//!   is driven back to digest equality with the durable chain, and the
//!   repair shows up in the report's [`IntegrityCounters`]. Without a
//!   scrubber the corruption is *served*.
//! * A lying disk ([`Fault::TornWrite`]) is caught by the scrub's WAL
//!   audit: the torn tail is truncated and the acknowledged epochs are
//!   re-appended from the fleet's in-memory log.
//! * An external [`DurableFleet`] store accumulates the write stream
//!   across serving runs, and recovery from its directory rebuilds
//!   exactly the final memory image.

use fat_tree_qram::core::store::{CheckpointPolicy, DurableFleet, GroupCommitPolicy, SimDir};
use fat_tree_qram::core::{FatTreeQram, ShardedQram};
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{FifoAdmission, TenantId};
use fat_tree_qram::serve::{
    AdaptiveGroupCommit, ConsistentHashPlacement, Fault, FaultConfig, FaultPlan, FleetConfig,
    FleetRequest, FleetWrite, QramFleet,
};

fn checkerboard(n: u64) -> ClassicalMemory {
    let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).unwrap()
}

fn request(id: usize, arrival: f64, address: u64) -> FleetRequest {
    FleetRequest {
        id,
        tenant: TenantId::DEFAULT,
        arrival: Layers::new(arrival),
        address: AddressState::classical(6, address % 64).unwrap(),
    }
}

fn fifo_fleet(replicas: usize, shards: u32) -> QramFleet<FatTreeQram> {
    QramFleet::new(
        ShardedQram::fat_tree(Capacity::new(64).unwrap(), shards),
        replicas,
        TimingModel::paper_default(),
        FifoAdmission,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity: None,
            replication_lag: Layers::new(30.0),
        },
    )
}

fn scrub_config(interval: f64) -> FaultConfig {
    FaultConfig {
        scrub_interval: Some(Layers::new(interval)),
        scrub_chunk_cells: 16,
        ..FaultConfig::default()
    }
}

/// checkerboard(64)[5] = (5·5 + 1) % 2 = 0; the corruption flips it.
const PROBE_CELL: u64 = 5;

fn corruption_run(config: &FaultConfig) -> fat_tree_qram::serve::FleetReport {
    let mut fleet = fifo_fleet(1, 2);
    let plan = FaultPlan::none().with(Fault::DiskCorrupt {
        replica: 0,
        at: Layers::new(50.0),
        cell: PROBE_CELL,
    });
    let requests = vec![request(0, 100.0, PROBE_CELL)];
    fleet
        .serve_with_faults(&checkerboard(64), requests, Vec::new(), &plan, config)
        .unwrap()
}

#[test]
fn without_a_scrubber_silent_corruption_is_served() {
    // The control arm: the disk fault activates the durability tier, but
    // no scrub ever compares digests, so the flipped bit reaches the
    // query and the ledger shows no repair.
    let report = corruption_run(&FaultConfig::default());
    assert_eq!(report.completed().len(), 1);
    assert_eq!(
        report.outcomes()[0].data_for(PROBE_CELL),
        Some(1),
        "the flipped cell is served verbatim"
    );
    let integrity = report.integrity();
    assert!(integrity.clean(), "nothing audited, nothing repaired");
    assert_eq!(integrity.scrub_cycles, 0);
}

#[test]
fn the_scrubber_repairs_divergence_back_to_digest_equality() {
    // The treatment arm: same fault, scrubbing on. The digest comparison
    // against the durable chain localizes the divergence, the replica is
    // reset to the chain's image, and the served read is clean again.
    let report = corruption_run(&scrub_config(75.0));
    assert_eq!(report.completed().len(), 1);
    assert_eq!(
        report.outcomes()[0].data_for(PROBE_CELL),
        Some(0),
        "the repaired replica serves the durable chain's value"
    );
    let integrity = report.integrity();
    assert!(integrity.scrub_cycles >= 1, "{integrity}");
    assert!(integrity.chunks_verified >= 4, "{integrity}");
    assert_eq!(integrity.mismatches, 1, "one 16-cell chunk diverged");
    assert_eq!(integrity.repairs, 1, "{integrity}");
    assert!(!integrity.clean());
}

#[test]
fn a_clean_run_gets_a_clean_bill_of_health() {
    // Scrubbing an undamaged fleet verifies chunks and repairs nothing —
    // and the writes it audits are all in the WAL ledger.
    let mut fleet = fifo_fleet(2, 2);
    let requests: Vec<FleetRequest> = (0..8)
        .map(|i| request(i, 40.0 * i as f64, i as u64))
        .collect();
    let writes = vec![
        FleetWrite {
            at: Layers::new(35.0),
            origin: 0,
            address: 3,
            value: 1,
        },
        FleetWrite {
            at: Layers::new(95.0),
            origin: 1,
            address: 9,
            value: 0,
        },
    ];
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            writes,
            &FaultPlan::none(),
            &scrub_config(60.0),
        )
        .unwrap();
    assert_eq!(report.completed().len(), 8);
    assert_eq!(report.fleet_epoch(), 2);
    let integrity = report.integrity();
    assert!(integrity.clean(), "{integrity}");
    assert!(integrity.scrub_cycles >= 2, "{integrity}");
    assert!(integrity.chunks_verified > 0);
    assert_eq!(integrity.wal_appends, 2, "one WAL record per fleet epoch");
}

#[test]
fn a_torn_write_is_truncated_and_reappended_by_the_scrub_audit() {
    // Epoch 1's durable append tears on the platter while reporting
    // success. The scrub's rescan finds the damage, truncates the torn
    // tail (which also costs the fully-written epoch 2 behind it — a
    // frame scan never resynchronizes past damage), and re-appends both
    // acknowledged epochs from the fleet's in-memory log.
    let mut fleet = fifo_fleet(1, 2);
    let plan = FaultPlan::none().with(Fault::TornWrite { epoch: 1 });
    let requests: Vec<FleetRequest> = (0..4)
        .map(|i| request(i, 60.0 * i as f64, i as u64))
        .collect();
    let writes = vec![
        FleetWrite {
            at: Layers::new(20.0),
            origin: 0,
            address: 3,
            value: 1,
        },
        FleetWrite {
            at: Layers::new(40.0),
            origin: 0,
            address: 7,
            value: 0,
        },
    ];
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            writes,
            &plan,
            &scrub_config(50.0),
        )
        .unwrap();
    assert_eq!(report.completed().len(), 4);
    let integrity = report.integrity();
    assert_eq!(integrity.torn_tails_truncated, 1, "{integrity}");
    assert_eq!(integrity.repairs, 2, "epochs 1 and 2 re-appended");
    assert_eq!(
        integrity.wal_appends, 4,
        "2 original appends + 2 re-appends"
    );
    assert_eq!(integrity.mismatches, 0, "replica memories never diverged");
}

#[test]
fn a_restarted_replica_rejoins_from_the_durable_chain() {
    // Replica 1 crashes before either write lands, and its rejoin
    // replays from disk: the durability tier is active (the plan has a
    // disk fault), so recovery resets the replica to the durable chain's
    // image — including the epoch whose append tore and was re-appended
    // by the rejoin's WAL audit.
    let mut fleet = fifo_fleet(2, 2);
    let plan = FaultPlan::none()
        .with(Fault::Crash {
            replica: 1,
            at: Layers::new(10.0),
        })
        .with(Fault::TornWrite { epoch: 1 })
        .with(Fault::Recover {
            replica: 1,
            at: Layers::new(400.0),
        });
    let requests: Vec<FleetRequest> = (0..12)
        .map(|i| request(i, 70.0 * i as f64, i as u64))
        .collect();
    let total = requests.len();
    let writes = vec![
        FleetWrite {
            at: Layers::new(50.0),
            origin: 0,
            address: 3,
            value: 1,
        },
        FleetWrite {
            at: Layers::new(120.0),
            origin: 0,
            address: 9,
            value: 0,
        },
    ];
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            writes,
            &plan,
            &FaultConfig::default(),
        )
        .unwrap();
    assert_eq!(report.completed().len(), total);
    assert_eq!(report.availability().crashes, 1);
    assert_eq!(report.availability().recoveries, 1);
    assert_eq!(report.fleet_epoch(), 2);
    let integrity = report.integrity();
    assert_eq!(
        integrity.torn_tails_truncated, 1,
        "the rejoin audit caught the lying disk: {integrity}"
    );
    assert!(integrity.repairs >= 1, "{integrity}");
}

/// A write stream of `n` writes spaced `gap` layers apart, each
/// touching a distinct cell.
fn write_stream(n: u64, gap: f64) -> Vec<FleetWrite> {
    (0..n)
        .map(|i| FleetWrite {
            at: Layers::new(10.0 + gap * i as f64),
            origin: 0,
            address: (i * 7) % 64,
            value: i % 2,
        })
        .collect()
}

#[test]
fn group_commit_batches_acknowledgments_into_fewer_syncs() {
    // Eight writes under a four-record group: two syncs, not eight —
    // the ledger shows exactly the fsyncs the batching saved, and the
    // store's durable watermark still covers every write by run end.
    let memory = checkerboard(64);
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &memory, CheckpointPolicy::never())
            .unwrap();
    let config = FaultConfig {
        group_commit: GroupCommitPolicy::group(4, 0.0),
        ..FaultConfig::default()
    };
    let mut fleet = fifo_fleet(1, 2);
    let report = fleet
        .serve_durable(
            &memory,
            vec![request(0, 300.0, 1)],
            write_stream(8, 20.0),
            &FaultPlan::none(),
            &config,
            &mut store,
        )
        .unwrap();
    assert_eq!(report.fleet_epoch(), 8);
    let integrity = report.integrity();
    assert_eq!(integrity.wal_appends, 8, "{integrity}");
    assert_eq!(
        integrity.wal_syncs, 2,
        "two full groups of four: {integrity}"
    );
    assert_eq!(integrity.max_group_records, 4, "{integrity}");
    assert_eq!(store.durable_epoch(), 8, "nothing left buffered");
    assert_eq!(store.pending_records(), 0);
}

#[test]
fn a_flush_deadline_lands_a_lonely_write() {
    // One write opens a group that will never fill; the armed deadline
    // flushes it mid-run rather than holding the acknowledgment until
    // the end-of-run drain.
    let memory = checkerboard(64);
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &memory, CheckpointPolicy::never())
            .unwrap();
    let config = FaultConfig {
        group_commit: GroupCommitPolicy::group(8, 25.0),
        ..FaultConfig::default()
    };
    let mut fleet = fifo_fleet(1, 2);
    let report = fleet
        .serve_durable(
            &memory,
            vec![request(0, 5.0, 1)],
            write_stream(1, 20.0),
            &FaultPlan::none(),
            &config,
            &mut store,
        )
        .unwrap();
    let integrity = report.integrity();
    assert_eq!(integrity.wal_appends, 1, "{integrity}");
    assert_eq!(integrity.wal_syncs, 1, "the deadline flushed: {integrity}");
    assert_eq!(integrity.max_group_records, 1, "{integrity}");
    assert_eq!(store.durable_epoch(), 1);
}

#[test]
fn delta_checkpoints_chain_then_fold_in_the_ledger() {
    // Policy: checkpoint every 2 epochs, fold past a chain of 2. Six
    // writes → deltas at epochs 2 and 4, a full fold at 6 — and the
    // report distinguishes all three from each other and from "never
    // checkpointed".
    let memory = checkerboard(64);
    let mut store = DurableFleet::create_with(
        Box::new(SimDir::new()),
        &memory,
        CheckpointPolicy::deltas(2, 2),
    )
    .unwrap();
    let mut fleet = fifo_fleet(1, 2);
    let report = fleet
        .serve_durable(
            &memory,
            vec![request(0, 200.0, 1)],
            write_stream(6, 25.0),
            &FaultPlan::none(),
            &FaultConfig::default(),
            &mut store,
        )
        .unwrap();
    let integrity = report.integrity();
    assert_eq!(integrity.delta_checkpoints, 2, "{integrity}");
    assert_eq!(
        integrity.checkpoints, 1,
        "the fold is a full image: {integrity}"
    );
    assert_eq!(
        integrity.delta_chain_len,
        Some(0),
        "the fold left a bare base image: {integrity}"
    );
    assert_eq!(store.delta_chain_len(), 0);
    assert_eq!(store.checkpoint_epoch(), 6);
}

#[test]
fn a_checkpoint_free_run_reports_no_chain_at_all() {
    // The zero-state fix: no checkpoint work ran, so the chain gauge is
    // absent — not a `0` that would read as "full image, current".
    let memory = checkerboard(64);
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &memory, CheckpointPolicy::never())
            .unwrap();
    let mut fleet = fifo_fleet(1, 2);
    let report = fleet
        .serve_durable(
            &memory,
            vec![request(0, 60.0, 1)],
            write_stream(2, 20.0),
            &FaultPlan::none(),
            &FaultConfig::default(),
            &mut store,
        )
        .unwrap();
    let integrity = report.integrity();
    assert_eq!(integrity.delta_chain_len, None, "{integrity}");
    assert!(integrity.to_string().ends_with("chain=-"), "{integrity}");
}

#[test]
fn the_adaptive_controller_widens_groups_under_a_write_burst() {
    // Dense writes with a fast monitor: each tick sees more appends
    // than the current group holds and doubles the knob, clamped to the
    // configured ceiling. The run ends with wider groups than it began
    // and fewer syncs than appends.
    let memory = checkerboard(64);
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &memory, CheckpointPolicy::never())
            .unwrap();
    let config = FaultConfig {
        monitor_interval: Layers::new(20.0),
        adaptive_group_commit: Some(AdaptiveGroupCommit {
            min_records: 1,
            max_records: 8,
        }),
        ..FaultConfig::default()
    };
    let requests: Vec<FleetRequest> = (0..6)
        .map(|i| request(i, 40.0 * i as f64, i as u64))
        .collect();
    let mut fleet = fifo_fleet(1, 2);
    let report = fleet
        .serve_durable(
            &memory,
            requests,
            write_stream(48, 4.0),
            &FaultPlan::none(),
            &config,
            &mut store,
        )
        .unwrap();
    assert_eq!(report.fleet_epoch(), 48);
    let integrity = report.integrity();
    assert_eq!(integrity.wal_appends, 48, "{integrity}");
    assert!(
        integrity.wal_syncs < integrity.wal_appends,
        "widened groups paid fewer syncs: {integrity}"
    );
    assert!(
        integrity.max_group_records > 1,
        "at least one multi-record group landed: {integrity}"
    );
    // Both directions: the burst widened the knob (multi-record groups
    // landed above), and the idle ticks after the burst halved it back
    // down below the ceiling before the run closed.
    assert!(
        store.group_commit().max_records < 8,
        "idle ticks narrow the knob back: {:?}",
        store.group_commit()
    );
    assert!(store.group_commit().max_records >= 1);
    assert_eq!(store.durable_epoch(), 48, "the end-of-run drain synced all");
}

#[test]
fn serve_durable_persists_the_write_stream_across_runs() {
    // An external store accumulates the WAL across two serving runs. The
    // second run starts where the first left off (its fleet epochs are
    // offset by the store's durable watermark), and recovery from the
    // directory alone rebuilds the final image.
    let memory = checkerboard(64);
    let mut store =
        DurableFleet::create_with(Box::new(SimDir::new()), &memory, CheckpointPolicy::every(3))
            .unwrap();

    let writes_a = vec![
        FleetWrite {
            at: Layers::new(10.0),
            origin: 0,
            address: 3,
            value: 1,
        },
        FleetWrite {
            at: Layers::new(30.0),
            origin: 1,
            address: 9,
            value: 0,
        },
    ];
    let mut fleet = fifo_fleet(2, 2);
    let report_a = fleet
        .serve_durable(
            &memory,
            vec![request(0, 5.0, 1)],
            writes_a,
            &FaultPlan::none(),
            &FaultConfig::default(),
            &mut store,
        )
        .unwrap();
    assert_eq!(report_a.fleet_epoch(), 2);
    assert_eq!(report_a.integrity().wal_appends, 2);
    assert_eq!(store.durable_epoch(), 2);

    // Run two starts from the durable chain's image, as a restarted
    // fleet would.
    let resumed = store.shadow().clone();
    let writes_b = vec![FleetWrite {
        at: Layers::new(10.0),
        origin: 0,
        address: 12,
        value: 1,
    }];
    let mut fleet_b = fifo_fleet(2, 2);
    let report_b = fleet_b
        .serve_durable(
            &resumed,
            vec![request(0, 5.0, 2)],
            writes_b,
            &FaultPlan::none(),
            &FaultConfig::default(),
            &mut store,
        )
        .unwrap();
    assert_eq!(report_b.fleet_epoch(), 1, "run-local epochs restart at 1");
    assert_eq!(store.durable_epoch(), 3, "the store's chain keeps growing");
    assert_eq!(
        report_b.integrity().checkpoints,
        1,
        "the policy checkpointed at store epoch 3"
    );

    // Crash the whole fleet: the directory alone rebuilds the image.
    let recovered = DurableFleet::recover(store.into_dir()).unwrap();
    assert_eq!(recovered.epoch, 3);
    let mut expect = checkerboard(64);
    expect.write(3, 1);
    expect.write(9, 0);
    expect.write(12, 1);
    assert_eq!(recovered.memory.cells(), expect.cells());
}
