//! Chaos suite for the fault-tolerant fleet: deterministic fault
//! injection must never lose a query (every admitted request resolves
//! exactly once, as Completed or Shed), retries must respect the backoff
//! budget, and the empty fault plan must be bit-identical — schedules AND
//! outcomes — to the pre-fault-injection serving loop kept as
//! `serve_reference`.

use fat_tree_qram::core::{FatTreeQram, ShardedQram};
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{FifoAdmission, QuotaAdmission, RetryPolicy, SloClass, TenantId};
use fat_tree_qram::serve::{
    BrownoutConfig, ConsistentHashPlacement, Fault, FaultConfig, FaultPlan, FleetConfig,
    FleetRequest, FleetWrite, QramFleet, ShedReason,
};
use proptest::prelude::*;

fn checkerboard(n: u64) -> ClassicalMemory {
    let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).unwrap()
}

fn request(id: usize, tenant: u32, arrival: f64, address: u64) -> FleetRequest {
    FleetRequest {
        id,
        tenant: TenantId(tenant),
        arrival: Layers::new(arrival),
        address: AddressState::classical(6, address % 64).unwrap(),
    }
}

fn fifo_fleet(
    replicas: usize,
    shards: u32,
    queue_capacity: Option<usize>,
) -> QramFleet<FatTreeQram> {
    QramFleet::new(
        ShardedQram::fat_tree(Capacity::new(64).unwrap(), shards),
        replicas,
        TimingModel::paper_default(),
        FifoAdmission,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity,
            replication_lag: Layers::new(30.0),
        },
    )
}

proptest! {
    /// The bit-equality pin: `serve` (which routes through
    /// `serve_with_faults` with the empty plan and the default passive
    /// config) is indistinguishable from the verbatim pre-fault loop for
    /// R ∈ {1, 2, 4} — same schedules, same outcomes, same shedding, and
    /// an all-zero availability ledger.
    #[test]
    fn empty_fault_plan_is_bit_equal_to_the_reference_loop(
        gaps in prop::collection::vec(0u16..90, 4..40),
        addr_seeds in prop::collection::vec(0u64..64, 4..40),
        write_seeds in prop::collection::vec(0u64..9_000_000, 0..5),
        r_exp in 0u32..=2,
        queue_cap_raw in 0usize..10,
    ) {
        let r = 1usize << r_exp;
        let queue_cap = (queue_cap_raw > 0).then_some(queue_cap_raw);
        let mut t = 0.0;
        let requests: Vec<FleetRequest> = gaps
            .iter()
            .enumerate()
            .map(|(id, &g)| {
                t += f64::from(g) / 16.0;
                request(id, 0, t, addr_seeds[id % addr_seeds.len()])
            })
            .collect();
        let mut wt = 0.0;
        let writes: Vec<FleetWrite> = write_seeds
            .iter()
            .map(|&seed| {
                wt += (seed % 900) as f64 / 16.0 + 0.333;
                FleetWrite {
                    at: Layers::new(wt),
                    origin: (seed / 900) as usize % r,
                    address: (seed / 3600) % 64,
                    value: (seed / 230_400) % 2,
                }
            })
            .collect();
        let memory = checkerboard(64);

        let mut faulty = fifo_fleet(r, 2, queue_cap);
        let via_faults = faulty
            .serve(&memory, requests.clone(), writes.clone())
            .unwrap();
        let mut reference = fifo_fleet(r, 2, queue_cap);
        let oracle = reference.serve_reference(&memory, requests, writes).unwrap();

        prop_assert_eq!(via_faults.completed(), oracle.completed());
        let via_schedule = via_faults.schedule();
        let oracle_schedule = oracle.schedule();
        prop_assert_eq!(via_schedule.entries(), oracle_schedule.entries());
        prop_assert_eq!(via_faults.outcomes(), oracle.outcomes());
        prop_assert_eq!(via_faults.shed(), oracle.shed());
        prop_assert_eq!(
            via_faults.per_replica_dispatches(),
            oracle.per_replica_dispatches()
        );
        prop_assert_eq!(via_faults.stale_served(), oracle.stale_served());
        prop_assert_eq!(
            via_faults.availability(),
            &fat_tree_qram::metrics::AvailabilityCounters::default()
        );
    }

    /// The no-lost-queries invariant under seeded chaos: whatever the
    /// fault plan does — crashes, recoveries, slowdowns, stalls, dropped
    /// replication, corrupted outcomes, torn durable writes, silent disk
    /// corruption — every request resolves exactly once, every completed
    /// query's attempt count respects the retry budget, and the run
    /// terminates. Half the runs scrub, so crash + disk-corrupt +
    /// scrub-repair all compose under the same invariant.
    #[test]
    fn seeded_chaos_never_loses_a_query(
        seed in 0u64..u64::MAX,
        gaps in prop::collection::vec(0u16..80, 8..48),
        addr_seeds in prop::collection::vec(0u64..64, 8..48),
        r in 1usize..=4,
        queue_cap_raw in 0usize..8,
        hedge_raw in 0u32..2,
        scrub_raw in 0u32..2,
    ) {
        let queue_cap = (queue_cap_raw > 0).then_some(queue_cap_raw + 3);
        let mut t = 0.0;
        let requests: Vec<FleetRequest> = gaps
            .iter()
            .enumerate()
            .map(|(id, &g)| {
                t += f64::from(g) / 16.0;
                request(id, 0, t, addr_seeds[id % addr_seeds.len()])
            })
            .collect();
        let total = requests.len();
        let writes = vec![
            FleetWrite { at: Layers::new(t * 0.3 + 0.1), origin: 0, address: 3, value: 1 },
            FleetWrite { at: Layers::new(t * 0.7 + 0.2), origin: r - 1, address: 9, value: 0 },
        ];
        let plan = FaultPlan::from_seed(seed, r, 2, Layers::new(t + 500.0));
        let config = FaultConfig {
            hedge_delay: (hedge_raw == 1).then(|| Layers::new(25.0)),
            monitor_interval: Layers::new(32.0),
            scrub_interval: (scrub_raw == 1).then(|| Layers::new(48.0)),
            ..FaultConfig::default()
        };

        let mut fleet = fifo_fleet(r, 2, queue_cap);
        let report = fleet
            .serve_with_faults(&checkerboard(64), requests, writes, &plan, &config)
            .unwrap();

        // Conservation: every request resolved exactly once.
        let mut resolved = vec![0usize; total];
        for c in report.completed() {
            resolved[c.id] += 1;
        }
        for s in report.shed() {
            resolved[s.id] += 1;
        }
        for (id, &count) in resolved.iter().enumerate() {
            prop_assert!(count == 1, "request {} resolved {} times", id, count);
        }
        // Attempts respect the capped retry budget.
        let budget = RetryPolicy::default().max_attempts;
        prop_assert!(report.completed().iter().all(|c| 1 <= c.attempts && c.attempts <= budget));
        // Timing sanity survives the chaos.
        prop_assert!(report
            .completed()
            .iter()
            .all(|c| c.arrival <= c.start && c.start < c.finish));
        // The ledger is consistent with the plan: no crash faults, no
        // crash counts.
        let planned_crashes = plan
            .faults()
            .iter()
            .filter(|f| matches!(f, Fault::Crash { .. }))
            .count() as u64;
        prop_assert!(report.availability().crashes <= planned_crashes);
        if planned_crashes == 0 {
            prop_assert_eq!(report.availability().failovers, 0);
        }
        // The integrity ledger is consistent with the durability tier:
        // when it is active every committed epoch is WAL-logged (plus
        // re-appends after torn-tail truncations), and a repaired
        // divergence always pairs a mismatch or truncation with a
        // repair.
        let integrity = report.integrity();
        if plan.has_disk_faults() || scrub_raw == 1 {
            prop_assert!(integrity.wal_appends >= report.fleet_epoch());
        } else {
            prop_assert_eq!(integrity, &fat_tree_qram::metrics::IntegrityCounters::default());
        }
        if scrub_raw == 1 {
            prop_assert!(integrity.scrub_cycles >= 1);
        }
        prop_assert!(integrity.clean() || integrity.repairs > 0 || integrity.mismatches > 0);
    }
}

#[test]
fn crash_is_detected_failed_over_and_repaired() {
    // R = 2, consistent hash: odd addresses home at replica 1, which
    // crashes at t = 450 with work queued and in flight, and recovers at
    // t = 1200. Default detection ticks every 64 layers: Suspect at 512,
    // Down at 576, stranded queries retried (backoff 64) at 640 onto
    // replica 0. No query is lost.
    let mut fleet = fifo_fleet(2, 2, None);
    let mut requests: Vec<FleetRequest> = (0..16)
        .map(|i| request(i, 0, i as f64 * 100.0, i as u64))
        .collect();
    for k in 0..4usize {
        requests.push(request(16 + k, 0, 440.0, 2 * k as u64 + 1));
    }
    let total = requests.len();
    let plan = FaultPlan::none()
        .with(Fault::Crash {
            replica: 1,
            at: Layers::new(450.0),
        })
        .with(Fault::Recover {
            replica: 1,
            at: Layers::new(1200.0),
        });
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            Vec::new(),
            &plan,
            &FaultConfig::default(),
        )
        .unwrap();

    assert_eq!(
        report.completed().len(),
        total,
        "the retry budget absorbs one crash: {:?}",
        report.shed()
    );
    let ledger = report.availability();
    assert_eq!(ledger.crashes, 1);
    assert_eq!(ledger.recoveries, 1);
    assert!(
        ledger.failovers >= 4,
        "the 440-burst strands on the crashed replica: {ledger}"
    );
    assert_eq!(
        ledger.retries, ledger.failovers,
        "each failover re-dispatches once"
    );
    // No writes → nothing to replay: the replica rejoins the instant it
    // recovers, so MTTR is exactly the crash → recover gap.
    assert_eq!(report.mttr(), Some(Layers::new(750.0)));
    // Failed-over queries consumed a second attempt.
    assert!(report.completed().iter().any(|c| c.attempts == 2));
    // While replica 1 was down, its odd addresses probed to replica 0...
    let rerouted = report
        .completed()
        .iter()
        .find(|c| c.id == 7)
        .expect("query 7 (arrival 700) completes");
    assert_eq!(
        rerouted.replica, 0,
        "address affinity degrades around the failure"
    );
    // ...and snapped back after the rejoin.
    let snapped = report
        .completed()
        .iter()
        .find(|c| c.id == 13)
        .expect("query 13 (arrival 1300) completes");
    assert_eq!(snapped.replica, 1, "affinity snaps back after recovery");
}

#[test]
fn deadlines_shed_queries_that_cannot_dispatch_in_time() {
    // K = 1 at capacity 64: admission interval 8.25 layers. A deadline of
    // 20 layers admits exactly the first three dispatches of a burst
    // (starts 0, 8.25, 16.5); the fourth would start at 24.75, so it and
    // everything behind it expires — bounded waiting instead of unbounded
    // queueing.
    let policy =
        QuotaAdmission::new(FifoAdmission).with_deadline(TenantId::DEFAULT, Layers::new(20.0));
    let mut fleet = QramFleet::new(
        ShardedQram::fat_tree(Capacity::new(64).unwrap(), 1),
        1,
        TimingModel::paper_default(),
        policy,
        ConsistentHashPlacement,
        FleetConfig::default(),
    );
    let requests: Vec<FleetRequest> = (0..12).map(|i| request(i, 0, 0.0, i as u64)).collect();
    let report = fleet
        .serve(&checkerboard(64), requests, Vec::new())
        .unwrap();

    assert_eq!(report.completed().len(), 3);
    assert_eq!(report.shed().len(), 9);
    assert!(report
        .shed()
        .iter()
        .all(|s| s.reason == ShedReason::DeadlineExceeded));
    assert_eq!(report.availability().deadline_expirations, 9);
    assert_eq!(
        report.shed_by_reason().get(&ShedReason::DeadlineExceeded),
        Some(&9)
    );
    assert!(report
        .completed()
        .iter()
        .all(|c| c.start <= Layers::new(20.0)));
}

#[test]
fn brownout_sheds_batch_before_interactive() {
    // A saturating Interactive burst drives routable occupancy far past
    // the brownout high-water mark; from the first monitor tick on, Batch
    // arrivals shed at the router while Interactive arrivals (level 1 of
    // the controller) are still admitted in full.
    let batch = TenantId(1);
    let interactive = TenantId(2);
    let policy = QuotaAdmission::new(FifoAdmission).with_slo(batch, SloClass::Batch);
    let mut fleet = QramFleet::new(
        ShardedQram::fat_tree(Capacity::new(64).unwrap(), 1),
        1,
        TimingModel::paper_default(),
        policy,
        ConsistentHashPlacement,
        FleetConfig::default(),
    );
    // 90 Interactive arrivals at t = 0 swamp the replica (slots = 6
    // in-flight + 24 notional queue), then both classes trickle in
    // between the first tick (64) and the second (128).
    let mut requests: Vec<FleetRequest> = (0..90)
        .map(|i| request(i, interactive.0, 0.0, i as u64))
        .collect();
    for k in 0..15usize {
        requests.push(request(90 + k, batch.0, 66.0 + 4.0 * k as f64, k as u64));
        requests.push(request(
            105 + k,
            interactive.0,
            67.0 + 4.0 * k as f64,
            k as u64,
        ));
    }
    let config = FaultConfig {
        brownout: Some(BrownoutConfig::default()),
        ..FaultConfig::default()
    };
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            Vec::new(),
            &FaultPlan::none(),
            &config,
        )
        .unwrap();

    let brownout_shed: Vec<&_> = report
        .shed()
        .iter()
        .filter(|s| s.reason == ShedReason::Brownout)
        .collect();
    assert_eq!(
        brownout_shed.len(),
        15,
        "every post-tick Batch arrival sheds: {:?}",
        report.shed_by_reason()
    );
    assert!(
        brownout_shed.iter().all(|s| s.tenant == batch),
        "brownout degrades cheapest-first: Batch before Interactive"
    );
    // Interactive traffic rode through the brownout untouched.
    assert_eq!(report.completed().len(), 90 + 15);
}

#[test]
fn hedged_dispatch_beats_a_slow_replica() {
    // Replica 0 serves at 8× nominal latency for the whole run. Every
    // Interactive query homes there (even addresses); the hedge fires 10
    // layers after arrival, lands on healthy replica 1, and wins — the
    // experienced latency is the hedge's, not the straggler's.
    let mut fleet = fifo_fleet(2, 2, None);
    let requests: Vec<FleetRequest> = (0..4)
        .map(|i| request(i, 0, i as f64 * 500.0, 2 * i as u64))
        .collect();
    let plan = FaultPlan::none().with(Fault::SlowReplica {
        replica: 0,
        from: Layers::ZERO,
        until: Layers::new(1.0e6),
        factor: 8.0,
    });
    let config = FaultConfig {
        hedge_delay: Some(Layers::new(10.0)),
        ..FaultConfig::default()
    };
    let report = fleet
        .serve_with_faults(&checkerboard(64), requests, Vec::new(), &plan, &config)
        .unwrap();

    assert_eq!(report.completed().len(), 4);
    let ledger = report.availability();
    assert_eq!(ledger.hedges, 4);
    assert_eq!(ledger.hedge_wins, 4);
    // Nominal latency is 49.375 layers; the slow primary would take 395.
    // Hedged completions finish within hedge delay + nominal + slack.
    for c in report.completed() {
        assert_eq!(c.replica, 1, "the hedge won on the healthy replica");
        assert_eq!(c.attempts, 1, "hedges are duplicates, not retries");
        assert!(
            c.response_latency() < Layers::new(100.0),
            "hedged latency {:?} must beat the 395-layer straggler",
            c.response_latency()
        );
    }
}

#[test]
fn corrupted_outcomes_are_caught_by_parity_and_reserved() {
    let mut fleet = fifo_fleet(1, 1, None);
    let requests = vec![request(0, 0, 0.0, 5)];
    let plan = FaultPlan::none().with(Fault::CorruptOutcome {
        replica: 0,
        dispatch: 0,
    });
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            Vec::new(),
            &plan,
            &FaultConfig::default(),
        )
        .unwrap();

    assert_eq!(report.completed().len(), 1);
    let ledger = report.availability();
    assert_eq!(ledger.corruptions_detected, 1, "parity caught the flip");
    assert_eq!(ledger.retries, 1);
    assert_eq!(report.completed()[0].attempts, 2);
    // The re-served outcome is the clean one: checkerboard(64)[5] = 0.
    assert_eq!(report.outcomes()[0].data_for(5), Some(0));
}

#[test]
fn a_stalled_shard_freezes_strict_fifo_dispatch_until_thawed() {
    // Shard 0 stalls over [0, 600) before any arrival; strict FIFO
    // round-robin means the whole replica dispatches nothing until the
    // thaw re-pumps it.
    let mut fleet = fifo_fleet(1, 2, None);
    let requests: Vec<FleetRequest> = (0..10).map(|i| request(i, 0, 10.0, i as u64)).collect();
    let plan = FaultPlan::none().with(Fault::StallShard {
        replica: 0,
        shard: 0,
        from: Layers::ZERO,
        until: Layers::new(600.0),
    });
    let report = fleet
        .serve_with_faults(
            &checkerboard(64),
            requests,
            Vec::new(),
            &plan,
            &FaultConfig::default(),
        )
        .unwrap();

    assert_eq!(report.completed().len(), 10);
    assert!(
        report
            .completed()
            .iter()
            .all(|c| c.start >= Layers::new(600.0)),
        "nothing dispatches while the head shard is frozen"
    );
}
