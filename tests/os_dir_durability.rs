//! End-to-end durability on a *real* filesystem: the same
//! create → serve → kill → recover cycle the SimDir suites prove, run
//! against [`OsDir`] in a scratch directory, so the `std::fs` plumbing
//! (append, atomic rename, read-at-offset streaming recovery) is
//! exercised at least once per CI run.
//!
//! Gated behind the `tempdir-tests` feature because it writes to disk:
//!
//! ```text
//! cargo test --features tempdir-tests --test os_dir_durability
//! ```

#![cfg(feature = "tempdir-tests")]

use std::fs;
use std::path::PathBuf;

use fat_tree_qram::core::store::{
    CheckpointPolicy, DurableFleet, GroupCommitPolicy, OsDir, WAL_FILE,
};
use fat_tree_qram::core::{FatTreeQram, ReplicatedWrite, ShardedQram};
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{FifoAdmission, TenantId};
use fat_tree_qram::serve::{
    ConsistentHashPlacement, FaultConfig, FaultPlan, FleetConfig, FleetRequest, FleetWrite,
    QramFleet,
};

/// A scratch directory under the cargo-managed tmp dir, unique per
/// test so parallel test threads never collide.
fn scratch(test: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("os_dir_{test}"));
    if dir.exists() {
        fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    dir
}

fn checkerboard(n: u64) -> ClassicalMemory {
    let cells: Vec<u64> = (0..n).map(|i| (i * 5 + 1) % 2).collect();
    ClassicalMemory::from_words(1, &cells).unwrap()
}

fn request(id: usize, arrival: f64, address: u64) -> FleetRequest {
    FleetRequest {
        id,
        tenant: TenantId::DEFAULT,
        arrival: Layers::new(arrival),
        address: AddressState::classical(6, address % 64).unwrap(),
    }
}

fn fifo_fleet(replicas: usize) -> QramFleet<FatTreeQram> {
    QramFleet::new(
        ShardedQram::fat_tree(Capacity::new(64).unwrap(), 2),
        replicas,
        TimingModel::paper_default(),
        FifoAdmission,
        ConsistentHashPlacement,
        FleetConfig {
            queue_capacity: None,
            replication_lag: Layers::new(30.0),
        },
    )
}

#[test]
fn a_served_write_stream_survives_a_kill_on_the_real_filesystem() {
    let root = scratch("serve_kill_recover");
    let memory = checkerboard(64);
    let mut store = DurableFleet::create_with(
        Box::new(OsDir::open(&root).expect("open scratch dir")),
        &memory,
        CheckpointPolicy::deltas(3, 2),
    )
    .expect("create store on disk");

    let writes = vec![
        FleetWrite {
            at: Layers::new(10.0),
            origin: 0,
            address: 3,
            value: 1,
        },
        FleetWrite {
            at: Layers::new(30.0),
            origin: 1,
            address: 9,
            value: 0,
        },
        FleetWrite {
            at: Layers::new(50.0),
            origin: 0,
            address: 12,
            value: 1,
        },
    ];
    let config = FaultConfig {
        group_commit: GroupCommitPolicy::group(2, 40.0),
        ..FaultConfig::default()
    };
    let mut fleet = fifo_fleet(2);
    let report = fleet
        .serve_durable(
            &memory,
            vec![request(0, 5.0, 1), request(1, 70.0, 3)],
            writes,
            &FaultPlan::none(),
            &config,
            &mut store,
        )
        .expect("durable run");
    assert_eq!(report.fleet_epoch(), 3);
    let integrity = report.integrity();
    assert_eq!(integrity.wal_appends, 3);
    assert!(
        integrity.wal_syncs < integrity.wal_appends,
        "group commit paid fewer fsyncs than appends: {integrity}"
    );
    assert_eq!(store.durable_epoch(), 3, "the end-of-run drain synced all");

    // Kill: drop the store without any shutdown courtesy. The files on
    // the platter are all that survives.
    drop(store);

    let recovered =
        DurableFleet::recover(Box::new(OsDir::open(&root).expect("reopen scratch dir")))
            .expect("recover from the real directory");
    assert_eq!(recovered.epoch, 3);
    assert_eq!(recovered.delta_chain, 1, "epoch 3 installed one delta");
    let mut expect = checkerboard(64);
    expect.write(3, 1);
    expect.write(9, 0);
    expect.write(12, 1);
    assert_eq!(recovered.memory.cells(), expect.cells());

    fs::remove_dir_all(&root).expect("clean scratch dir");
}

#[test]
fn an_unsynced_group_tail_is_lost_but_never_resurrected_on_disk() {
    let root = scratch("unsynced_tail");
    let memory = checkerboard(64);
    let mut store = DurableFleet::create_with(
        Box::new(OsDir::open(&root).expect("open scratch dir")),
        &memory,
        CheckpointPolicy::never(),
    )
    .expect("create store on disk")
    .with_group_commit(GroupCommitPolicy::group(4, 0.0));

    // One full group syncs; two more records buffer and never flush.
    for epoch in 1..=6u64 {
        let summary = store
            .append(&ReplicatedWrite {
                epoch,
                origin: 0,
                address: epoch % 64,
                value: epoch % 2,
            })
            .expect("append");
        assert_eq!(summary.synced_records > 0, epoch == 4);
    }
    assert_eq!(store.durable_epoch(), 4);
    assert_eq!(store.pending_records(), 2);
    drop(store); // kill mid-group: the buffered tail dies with the process

    let recovered =
        DurableFleet::recover(Box::new(OsDir::open(&root).expect("reopen scratch dir")))
            .expect("recover");
    assert_eq!(
        recovered.epoch, 4,
        "the synced group survives; the buffered tail is gone"
    );
    assert_eq!(recovered.truncated_bytes, 0, "no torn bytes, just absence");
    let mut expect = checkerboard(64);
    for epoch in 1..=4u64 {
        expect.write(epoch % 64, epoch % 2);
    }
    assert_eq!(recovered.memory.cells(), expect.cells());

    // The reopened store keeps appending where the synced prefix ends.
    let mut reopened = DurableFleet::open(
        Box::new(OsDir::open(&root).expect("reopen")),
        CheckpointPolicy::never(),
    )
    .expect("open");
    assert_eq!(reopened.durable_epoch(), 4);
    reopened
        .append(&ReplicatedWrite {
            epoch: 5,
            origin: 0,
            address: 20,
            value: 1,
        })
        .expect("append after recovery");
    assert!(reopened.dir_mut().exists(WAL_FILE));

    fs::remove_dir_all(&root).expect("clean scratch dir");
}
