//! The paper's headline numbers, asserted end to end. Each test cites the
//! table or figure it reproduces; EXPERIMENTS.md records the mapping.

use fat_tree_qram::algos::{algorithm_depth, sweep_cell, ParallelAlgorithm};
use fat_tree_qram::arch::{Architecture, CostModel, NodeLayout, OnChipPlan};
use fat_tree_qram::core::{BucketBrigadeQram, FatTreeQram, QramModel};
use fat_tree_qram::metrics::{Capacity, TimingModel};
use fat_tree_qram::noise::{bounds, table4, GateErrorRates};

fn cap(n: u64) -> Capacity {
    Capacity::new(n).unwrap()
}

fn timing() -> TimingModel {
    TimingModel::paper_default()
}

// ---- Figure 1(b) / Table 1 ----

#[test]
fn fig1b_asymptotic_comparison() {
    let c = cap(1 << 12);
    let ft = CostModel::new(Architecture::FatTree, c, timing());
    let bb = CostModel::new(Architecture::BucketBrigade, c, timing());
    // O(N) qubits both, 2× constant for Fat-Tree.
    assert_eq!(ft.qubit_count(), 2 * bb.qubit_count());
    // Parallelism log N vs 1.
    assert_eq!(ft.query_parallelism(), 12);
    assert_eq!(bb.query_parallelism(), 1);
    // log N queries: O(log N) vs O(log² N).
    let ft_t = ft.parallel_queries_latency(12).get();
    let bb_t = bb.parallel_queries_latency(12).get();
    assert!(ft_t < 200.0 && bb_t > 900.0);
}

#[test]
fn table1_fat_tree_row() {
    let m = CostModel::new(Architecture::FatTree, cap(1024), timing());
    assert_eq!(m.qubit_count(), 16 * 1024);
    assert!((m.single_query_latency().get() - 82.375).abs() < 1e-9);
    assert!((m.parallel_queries_latency(10).get() - 156.625).abs() < 1e-9);
    assert!((m.amortized_query_latency().get() - 8.25).abs() < 1e-9);
}

// ---- Table 2 ----

#[test]
fn table2_bandwidth_and_volume() {
    let ft = CostModel::new(Architecture::FatTree, cap(1024), timing());
    assert!((ft.bandwidth(1).get() - 1.2121e5).abs() < 10.0);
    assert!((ft.spacetime_volume_per_query().per_cell(1024) - 132.0).abs() < 1e-9);
    assert!((ft.classical_swap_budget_micros() - 8.25).abs() < 1e-9);
    let bb = CostModel::new(Architecture::BucketBrigade, cap(1024), timing());
    assert!((bb.classical_swap_budget_micros() - 80.125).abs() < 1e-9);
}

// ---- Figure 2(a) / Figure 6 ----

#[test]
fn fig2a_and_fig6_layer_counts() {
    let bb = BucketBrigadeQram::new(cap(8));
    assert_eq!(bb.single_query_layers_integer(), 25);
    assert_eq!(bb.stage_finish_layers(), vec![4, 8, 12, 13, 17, 21, 25]);
    let ft = FatTreeQram::new(cap(8));
    assert_eq!(ft.single_query_layers_integer(), 29); // 29:25 (Fig. 6)
    let schedule = ft.pipeline(3);
    assert_eq!(schedule.makespan_integer(), 49);
    assert!(schedule.validate_no_conflicts().is_ok());
}

// ---- Figure 8 ----

#[test]
fn fig8_fat_tree_bandwidth_is_flat() {
    let values: Vec<f64> = Capacity::sweep(1024)
        .skip(1)
        .map(|c| {
            CostModel::new(Architecture::FatTree, c, timing())
                .bandwidth(1)
                .get()
        })
        .collect();
    for w in values.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-6,
            "Fat-Tree bandwidth must be flat"
        );
    }
    let bb: Vec<f64> = Capacity::sweep(1024)
        .skip(1)
        .map(|c| {
            CostModel::new(Architecture::BucketBrigade, c, timing())
                .bandwidth(1)
                .get()
        })
        .collect();
    for w in bb.windows(2) {
        assert!(w[0] > w[1], "BB bandwidth must decay with N");
    }
}

// ---- Figure 9 ----

#[test]
fn fig9_depth_reductions() {
    let c = cap(1024);
    for algorithm in ParallelAlgorithm::figure9_suite() {
        let ft = algorithm_depth(algorithm, Architecture::FatTree, c, timing()).get();
        let bb = algorithm_depth(algorithm, Architecture::BucketBrigade, c, timing()).get();
        let ratio = bb / ft;
        assert!(
            (4.0..15.0).contains(&ratio),
            "{algorithm}: speedup {ratio} outside the paper's up-to-10x regime"
        );
    }
}

// ---- Figure 10 ----

#[test]
fn fig10_shape() {
    let c = cap(1024);
    // BB is bandwidth-bound: depth at p=30 is ~30x depth at p=1 when
    // processing is negligible.
    let bb1 = sweep_cell(Architecture::BucketBrigade, c, timing(), 0.25, 1)
        .depth
        .get();
    let bb30 = sweep_cell(Architecture::BucketBrigade, c, timing(), 0.25, 30)
        .depth
        .get();
    assert!(bb30 / bb1 > 20.0);
    // Fat-Tree at the same point is far shallower.
    let ft30 = sweep_cell(Architecture::FatTree, c, timing(), 0.25, 30)
        .depth
        .get();
    assert!(bb30 / ft30 > 5.0);
    // Utilization: Fat-Tree spans the whole range.
    let low = sweep_cell(Architecture::FatTree, c, timing(), 2.0, 1)
        .utilization
        .get();
    let high = sweep_cell(Architecture::FatTree, c, timing(), 0.0, 30)
        .utilization
        .get();
    assert!(low < 0.2 && high > 0.85);
}

// ---- Table 3 / Table 4 / Figure 11 ----

#[test]
fn table3_column() {
    for (n, expect) in [(8u64, 0.045), (16, 0.08), (32, 0.125), (64, 0.18)] {
        assert!((bounds::table3_infidelity(cap(n), 1e-3) - expect).abs() < 1e-12);
    }
}

#[test]
fn table4_rows() {
    let [ft, bb] = table4();
    assert!((ft.fidelity_before - 0.84).abs() < 1e-12);
    assert!((bb.fidelity_before - 0.872).abs() < 1e-12);
    assert!(ft.fidelity_after > 0.999);
    assert!((bb.fidelity_after - 0.984).abs() < 1e-3);
}

#[test]
fn fig11_constant_factor_between_ft_and_bb() {
    let rates = GateErrorRates::paper_default();
    let ft = bounds::fat_tree_query_infidelity(cap(1 << 8), &rates);
    let bb = bounds::bb_query_infidelity(cap(1 << 8), &rates);
    assert!((ft / bb - 1.25).abs() < 1e-9);
}

// ---- §4.1 / §4.2 hardware claims ----

#[test]
fn router_count_only_doubles() {
    for n in [64u64, 1024, 1 << 15] {
        let ft = FatTreeQram::new(cap(n));
        let bb = BucketBrigadeQram::new(cap(n));
        let ratio = ft.router_count() as f64 / bb.router_count() as f64;
        assert!(ratio < 2.0 && ratio > 1.8, "N={n}: ratio {ratio}");
    }
}

#[test]
fn biplanar_chip_has_no_crossings() {
    // Every node size appearing in a capacity-2^16 Fat-Tree.
    for routers in 1..=16u32 {
        assert_eq!(NodeLayout::new(routers).biplanar_crossings(), 0);
    }
    // And the global plane alternation is consistent.
    assert!(OnChipPlan::new(cap(1 << 10)).verify_alternation());
}
