//! Property-based tests over the core invariants of the reproduction.

use fat_tree_qram::core::exec::{execute_layers, execute_layers_sequential};
use fat_tree_qram::core::{
    execute_batch, execute_batch_rowwise, execute_batch_traced, execute_batch_unmemoized,
    BucketBrigadeQram, CompiledQuery, FatTreeQram, Op, PipelineSchedule, QramModel, QubitTag,
    ShardedQram,
};
use fat_tree_qram::metrics::{Capacity, Layers};
use fat_tree_qram::noise::distilled_infidelity;
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::qsim::Complex;
use fat_tree_qram::sched::{
    schedule_fifo, schedule_in_order, OnlineFifoScheduler, QramServer, QueryRequest,
};
use proptest::prelude::*;

proptest! {
    /// Every [`QramModel`] backend must reproduce the ideal query
    /// semantics (`ClassicalMemory::ideal_query`) for random memories and
    /// random address superpositions — asserted generically through the
    /// trait, so a future backend is covered by adding one line.
    #[test]
    fn qram_model_backends_match_ideal_semantics(
        n in 1u32..=7,
        seed_cells in prop::collection::vec(0u64..2, 1..128),
        picks in prop::collection::vec(0u64..128, 1..10),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let mut addresses: Vec<u64> = picks.iter().map(|p| p % capacity).collect();
        addresses.sort_unstable();
        addresses.dedup();
        let address = AddressState::uniform(n, &addresses).unwrap();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 2] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
        ];
        let ideal = memory.ideal_query(&address);
        for backend in &backends {
            let outcome = backend.execute_query(&memory, &address).unwrap();
            prop_assert!(
                (outcome.fidelity(&ideal) - 1.0).abs() < 1e-9,
                "{} diverges from ideal semantics", backend.name()
            );
        }
    }

    /// Batched execution through the trait returns per-query outcomes that
    /// each match the ideal semantics, on both architectures.
    #[test]
    fn qram_model_batches_match_ideal_semantics(
        n in 1u32..=5,
        seed_cells in prop::collection::vec(0u64..2, 1..32),
        query_addrs in prop::collection::vec(0u64..32, 1..6),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses: Vec<AddressState> = query_addrs
            .iter()
            .map(|&a| AddressState::classical(n, a % capacity).unwrap())
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 2] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
        ];
        for backend in &backends {
            let outcomes = backend.execute_queries(&memory, &addresses, &[]).unwrap();
            prop_assert_eq!(outcomes.len(), addresses.len());
            for (address, outcome) in addresses.iter().zip(&outcomes) {
                let ideal = memory.ideal_query(address);
                prop_assert!(
                    (outcome.fidelity(&ideal) - 1.0).abs() < 1e-9,
                    "{} batch diverges from ideal semantics", backend.name()
                );
            }
        }
    }

    /// A sharded Fat-Tree of any shard count is observably equivalent to
    /// the monolithic machine of equal total capacity: batched execution
    /// over random memories and random address superpositions reproduces
    /// `ideal_query` per query and matches the monolithic outcome
    /// query-for-query (the sharded serving backend's acceptance
    /// criterion).
    #[test]
    fn sharded_fat_tree_matches_monolith_and_ideal(
        n in 3u32..=6,
        k_exp in 1u32..=3,
        seed_cells in prop::collection::vec(0u64..2, 1..64),
        query_picks in prop::collection::vec(prop::collection::vec(0u64..64, 1..5), 1..6),
    ) {
        let capacity = 1u64 << n;
        // K ∈ {2, 4, 8}, clamped so each shard keeps ≥ 1 address bit.
        let k = 1u32 << k_exp.min(n - 1);
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses: Vec<AddressState> = query_picks
            .iter()
            .map(|picks| {
                let mut a: Vec<u64> = picks.iter().map(|p| p % capacity).collect();
                a.sort_unstable();
                a.dedup();
                AddressState::uniform(n, &a).unwrap()
            })
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let sharded = ShardedQram::fat_tree(cap, k);
        let monolith = FatTreeQram::new(cap);
        let sharded_outs = sharded.execute_queries(&memory, &addresses, &[]).unwrap();
        let mono_outs = monolith.execute_queries(&memory, &addresses, &[]).unwrap();
        prop_assert_eq!(sharded_outs.len(), addresses.len());
        for ((address, s_out), m_out) in addresses.iter().zip(&sharded_outs).zip(&mono_outs) {
            let ideal = memory.ideal_query(address);
            prop_assert!(
                (s_out.fidelity(&ideal) - 1.0).abs() < 1e-9,
                "K={} diverges from ideal semantics", k
            );
            prop_assert!(
                (s_out.fidelity(m_out) - 1.0).abs() < 1e-9,
                "K={} diverges from the monolithic outcome", k
            );
        }
    }

    /// The online FIFO scheduler equals the offline FIFO schedule on
    /// arrival sequences containing *duplicate* arrival times and bursts
    /// larger than the pipeline parallelism — not just strictly increasing
    /// Poisson arrivals.
    #[test]
    fn online_fifo_matches_offline_on_bursty_duplicate_arrivals(
        gaps in prop::collection::vec(0u32..3, 2..40),
        burst in 2usize..=20,
        n_exp in 2u32..=6,
    ) {
        // Mostly-zero gaps create duplicate arrival times; the leading
        // burst at t = 0 exceeds parallelism (log₂ N ≤ 6 < burst ≤ 20
        // whenever burst > n_exp).
        let mut requests: Vec<QueryRequest> = Vec::new();
        for _ in 0..burst {
            requests.push(QueryRequest { id: requests.len(), arrival: Layers::ZERO });
        }
        let mut t = 0.0;
        for &gap in &gaps {
            t += f64::from(gap);
            requests.push(QueryRequest { id: requests.len(), arrival: Layers::new(t) });
        }
        let server = QramServer::fat_tree_integer_layers(Capacity::from_address_width(n_exp));
        let mut online = OnlineFifoScheduler::new(server);
        for &r in &requests {
            online.submit(r).unwrap();
        }
        let online_schedule = online.finish();
        let offline = schedule_fifo(&requests, &server);
        prop_assert_eq!(online_schedule.entries(), offline.entries());
    }

    /// Executing the generated Fat-Tree instruction stream over any
    /// address superposition reproduces Eq. (1) exactly.
    #[test]
    fn fat_tree_execution_matches_ideal_semantics(
        n in 1u32..=8,
        seed_cells in prop::collection::vec(0u64..2, 1..256),
        picks in prop::collection::vec(0u64..256, 1..12),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let mut addresses: Vec<u64> = picks.iter().map(|p| p % capacity).collect();
        addresses.sort_unstable();
        addresses.dedup();
        let address = AddressState::uniform(n, &addresses).unwrap();
        let qram = FatTreeQram::new(Capacity::new(capacity).unwrap());
        let outcome = qram.execute_query(&memory, &address).unwrap();
        let ideal = memory.ideal_query(&address);
        prop_assert!((outcome.fidelity(&ideal) - 1.0).abs() < 1e-9);
    }

    /// Ditto for the bucket-brigade stream, with non-uniform amplitudes.
    #[test]
    fn bb_execution_matches_ideal_semantics(
        n in 1u32..=7,
        weights in prop::collection::vec(1u32..100, 2..8),
    ) {
        let capacity = 1u64 << n;
        let cells: Vec<u64> = (0..capacity).map(|i| i % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let terms: Vec<(Complex, u64)> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| (Complex::real(f64::from(w)), (i as u64 * 37) % capacity))
            .collect();
        // Deduplicate addresses.
        let mut seen = std::collections::HashSet::new();
        let terms: Vec<_> = terms
            .into_iter()
            .filter(|&(_, a)| seen.insert(a))
            .collect();
        let address = AddressState::new(n, terms).unwrap();
        let qram = BucketBrigadeQram::new(Capacity::new(capacity).unwrap());
        let outcome = qram.execute_query(&memory, &address).unwrap();
        let ideal = memory.ideal_query(&address);
        prop_assert!((outcome.fidelity(&ideal) - 1.0).abs() < 1e-9);
    }

    /// The Fat-Tree pipeline never double-books a sub-QRAM, for any
    /// capacity and any batch size.
    #[test]
    fn pipeline_is_always_conflict_free(n in 1u32..=10, queries in 1usize..=40) {
        let schedule = PipelineSchedule::new(Capacity::from_address_width(n), queries);
        prop_assert!(schedule.validate_no_conflicts().is_ok());
    }

    /// At every gate step, at most log₂(N) queries are in flight.
    #[test]
    fn pipeline_respects_parallelism(n in 1u32..=8, queries in 1usize..=30) {
        let schedule = PipelineSchedule::new(Capacity::from_address_width(n), queries);
        for t in 1..=schedule.total_gate_steps() {
            prop_assert!(schedule.occupancy_at(t).len() <= n as usize);
        }
    }

    /// FIFO minimizes total latency against random permutations
    /// (Appendix A.2), on random arrival patterns and random servers.
    #[test]
    fn fifo_is_latency_optimal(
        arrivals in prop::collection::vec(0.0f64..500.0, 2..10),
        perm_seed in 0u64..1000,
        n_exp in 2u32..=8,
    ) {
        let requests: Vec<QueryRequest> = arrivals
            .iter()
            .enumerate()
            .map(|(id, &a)| QueryRequest { id, arrival: Layers::new(a) })
            .collect();
        let server = QramServer::fat_tree_integer_layers(
            Capacity::from_address_width(n_exp));
        let fifo = schedule_fifo(&requests, &server).total_latency();
        // A deterministic pseudo-random permutation from the seed.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        let mut state = perm_seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let alt = schedule_in_order(&requests, &order, &server).total_latency();
        prop_assert!(fifo <= alt + Layers::new(1e-9),
            "FIFO {} > permuted {}", fifo.get(), alt.get());
    }

    /// Distilled infidelity is monotone non-increasing in copies and never
    /// exceeds the input infidelity.
    #[test]
    fn distillation_is_monotone(eps in 0.0f64..0.49, k in 1u32..8) {
        let once = distilled_infidelity(eps, k);
        let more = distilled_infidelity(eps, k + 1);
        prop_assert!(more <= once + 1e-15);
        prop_assert!(once <= eps + 1e-15);
    }

    /// The dispatching executor (`execute_layers`, branch-parallel under
    /// the `parallel` feature) and the pinned sequential reference return
    /// identical `Execution`s — outcome terms, gate counts, everything —
    /// on both instruction-stream architectures, including superpositions
    /// wide enough to cross the parallel branch threshold.
    #[test]
    fn parallel_and_sequential_executors_agree(
        n in 4u32..=8,
        seed_cells in prop::collection::vec(0u64..2, 1..256),
        stride in 1u64..37,
        branch_count in 1usize..200,
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let mut addresses: Vec<u64> = (0..branch_count as u64)
            .map(|i| (i * stride) % capacity)
            .collect();
        addresses.sort_unstable();
        addresses.dedup();
        let address = AddressState::uniform(n, &addresses).unwrap();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 2] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
        ];
        for backend in &backends {
            let layers = backend.interned_query_layers();
            let auto = execute_layers(&layers, &memory, &address).unwrap();
            let seq = execute_layers_sequential(&layers, &memory, &address).unwrap();
            prop_assert_eq!(&auto, &seq);
        }
    }

    /// `ShardedQram::execute_queries` (shard-parallel under the `parallel`
    /// feature) equals its pinned sequential reference on random batches
    /// with interleaved memory writes, for Fat-Tree and bucket-brigade
    /// shards.
    #[test]
    fn sharded_parallel_and_sequential_agree(
        n in 4u32..=6,
        k_exp in 1u32..=3,
        seed_cells in prop::collection::vec(0u64..2, 1..64),
        query_strides in prop::collection::vec(1u64..23, 1..5),
        // The vendored proptest has no tuple strategies: each u64 encodes
        // (layer, address, value) and is decoded below.
        updates in prop::collection::vec(0u64..(200 * 64 * 2), 0..4),
    ) {
        let capacity = 1u64 << n;
        let k = 1u32 << k_exp.min(n - 1);
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        // Wide superpositions so the parallel path's branch threshold is
        // crossed for most cases.
        let addresses: Vec<AddressState> = query_strides
            .iter()
            .map(|&stride| {
                let mut a: Vec<u64> = (0..capacity).map(|i| (i * stride) % capacity).collect();
                a.sort_unstable();
                a.dedup();
                AddressState::uniform(n, &a).unwrap()
            })
            .collect();
        let updates: Vec<(u64, u64, u64)> = updates
            .into_iter()
            .map(|enc| (enc / 128, (enc / 2) % capacity, enc % 2))
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let ft = ShardedQram::fat_tree(cap, k);
        let bb = ShardedQram::bucket_brigade(cap, k);
        let ft_par = ft.execute_queries(&memory, &addresses, &updates).unwrap();
        let ft_seq = ft.execute_queries_sequential(&memory, &addresses, &updates).unwrap();
        prop_assert_eq!(ft_par, ft_seq);
        let bb_par = bb.execute_queries(&memory, &addresses, &updates).unwrap();
        let bb_seq = bb.execute_queries_sequential(&memory, &addresses, &updates).unwrap();
        prop_assert_eq!(bb_par, bb_seq);
    }

    /// Memoized batch execution equals the unmemoized reference across
    /// interleaved memory writes on all three backends: repeated address
    /// sets force cache hits, and every write's epoch bump must invalidate
    /// exactly as §7.2 requires.
    #[test]
    fn memoized_batches_match_unmemoized_across_interleaved_writes(
        n in 3u32..=5,
        seed_cells in prop::collection::vec(0u64..2, 1..32),
        // Few distinct addresses over many queries → plenty of repeats.
        query_addrs in prop::collection::vec(0u64..4, 2..12),
        // Encoded (layer, address, value) triples, as above.
        updates in prop::collection::vec(0u64..(300 * 32 * 2), 0..6),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses: Vec<AddressState> = query_addrs
            .iter()
            .map(|&a| AddressState::classical(n, a % capacity).unwrap())
            .collect();
        let updates: Vec<(u64, u64, u64)> = updates
            .into_iter()
            .map(|enc| (enc / 64, (enc / 2) % capacity, enc % 2))
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 3] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
            Box::new(ShardedQram::fat_tree(cap, 2)),
        ];
        for backend in &backends {
            let memoized =
                execute_batch(backend.as_ref(), &memory, &addresses, &updates).unwrap();
            let plain =
                execute_batch_unmemoized(backend.as_ref(), &memory, &addresses, &updates)
                    .unwrap();
            prop_assert_eq!(&memoized, &plain);
        }
    }

    /// Compiled query plans are observably identical to the interpreter
    /// on all three backends: same outcomes and same gate counts for
    /// random memories and superpositions. `execute_query_traced` takes
    /// the compiled path (every built-in backend exposes a plan), and is
    /// compared against the pinned sequential interpreter run over the
    /// same interned stream.
    #[test]
    fn compiled_plans_match_interpreter_on_all_backends(
        n in 2u32..=6,
        seed_cells in prop::collection::vec(0u64..2, 1..64),
        picks in prop::collection::vec(0u64..64, 1..12),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let mut addresses: Vec<u64> = picks.iter().map(|p| p % capacity).collect();
        addresses.sort_unstable();
        addresses.dedup();
        let address = AddressState::uniform(n, &addresses).unwrap();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 3] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
            Box::new(ShardedQram::bucket_brigade(cap, 2)),
        ];
        for backend in &backends {
            prop_assert!(
                backend.compiled_query().is_some(),
                "{} must expose a compiled plan", backend.name()
            );
            let compiled = backend.execute_query_traced(&memory, &address).unwrap();
            let interpreted = execute_layers_sequential(
                &backend.interned_query_layers(),
                &memory,
                &address,
            )
            .unwrap();
            prop_assert!(
                compiled == interpreted,
                "{} compiled != interpreted", backend.name()
            );
        }
    }

    /// Compiled batched execution (`execute_queries`: plan dispatch +
    /// memoization) equals the pure-interpreter reference
    /// (`execute_batch_unmemoized` / `execute_queries_sequential`) across
    /// interleaved §7.2 memory writes on all three backends.
    #[test]
    fn compiled_batches_match_interpreted_reference(
        n in 3u32..=5,
        seed_cells in prop::collection::vec(0u64..2, 1..32),
        query_addrs in prop::collection::vec(0u64..32, 1..8),
        // Encoded (layer, address, value) triples (the vendored proptest
        // has no tuple strategies).
        updates in prop::collection::vec(0u64..(300 * 32 * 2), 0..5),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses: Vec<AddressState> = query_addrs
            .iter()
            .map(|&a| AddressState::classical(n, a % capacity).unwrap())
            .collect();
        let updates: Vec<(u64, u64, u64)> = updates
            .into_iter()
            .map(|enc| (enc / 64, (enc / 2) % capacity, enc % 2))
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 2] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
        ];
        for backend in &backends {
            let compiled =
                backend.execute_queries(&memory, &addresses, &updates).unwrap();
            let reference =
                execute_batch_unmemoized(backend.as_ref(), &memory, &addresses, &updates)
                    .unwrap();
            prop_assert!(compiled == reference, "{} diverges", backend.name());
        }
        let sharded = ShardedQram::fat_tree(cap, 2);
        let compiled = sharded.execute_queries(&memory, &addresses, &updates).unwrap();
        let reference = sharded
            .execute_queries_sequential(&memory, &addresses, &updates)
            .unwrap();
        prop_assert!(compiled == reference, "Sharded diverges");
    }

    /// Randomly mutated instruction streams behave identically under
    /// compilation and interpretation: a corrupted stream is rejected at
    /// compile time with the interpreter's exact error (layer index and
    /// message), and a mutation that leaves the stream valid (e.g. a
    /// duplicated retrieval whose reads XOR-cancel) compiles to a plan
    /// with the interpreter's outcome.
    #[test]
    fn mutated_streams_compile_and_interpret_identically(
        n in 2u32..=5,
        arch_pick in 0u64..2,
        mutation in 0u64..6,
        position in 0u64..10_000,
    ) {
        let capacity = 1u64 << n;
        let cells: Vec<u64> = (0..capacity).map(|i| (i * 3 + 1) % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let address = AddressState::full_superposition(n);
        let arch: Box<dyn QramModel> = if arch_pick == 1 {
            Box::new(FatTreeQram::new(Capacity::new(capacity).unwrap()))
        } else {
            Box::new(BucketBrigadeQram::new(Capacity::new(capacity).unwrap()))
        };
        let mut layers = arch.query_layers();
        let layer = (position as usize) % layers.len();
        let level = (position % u64::from(n)) as u32;
        match mutation {
            0 => {
                // Duplicate the layer's first op in place.
                if let Some(&op) = layers[layer].ops.first() {
                    layers[layer].ops.push(op);
                }
            }
            1 => {
                // Drop the layer's first op.
                if !layers[layer].ops.is_empty() {
                    layers[layer].ops.remove(0);
                }
            }
            2 => layers[layer].ops.clear(),
            3 => layers[layer].ops.push(Op::Store(level)),
            4 => layers[layer].ops.insert(0, Op::ClassicalGates),
            _ => layers[layer].ops.push(Op::Load(QubitTag::Bus)),
        }
        let compiled = CompiledQuery::compile(n, &layers);
        let interpreted = execute_layers_sequential(&layers, &memory, &address);
        match (compiled, interpreted) {
            (Ok(plan), Ok(exec)) => {
                prop_assert_eq!(plan.execute(&memory, &address), exec);
            }
            (Err(compile_err), Err(interp_err)) => {
                prop_assert!(
                    compile_err == interp_err,
                    "compile error {compile_err:?} != interpreter error {interp_err:?}"
                );
            }
            (Ok(_), Err(e)) => {
                return Err(TestCaseError::fail(format!(
                    "stream compiled but the interpreter rejected it: {e}"
                )));
            }
            (Err(e), Ok(_)) => {
                return Err(TestCaseError::fail(format!(
                    "interpreter accepted a stream compilation rejected: {e}"
                )));
            }
        }
    }

    /// The columnar structure-of-arrays kernel (`execute_batch_traced`,
    /// taken whenever the backend exposes a compiled plan) is bit-equal to
    /// the pinned row-at-a-time memoized path (`execute_batch_rowwise`)
    /// and to the pure interpreter (`execute_batch_unmemoized`) across
    /// interleaved §7.2 memory writes — outcomes *and* `BatchCacheStats`
    /// (the columnar kernel computes hit/miss counts analytically per
    /// epoch; they must match the row memo's probe-by-probe accounting).
    #[test]
    fn columnar_kernel_matches_rowwise_and_interpreter(
        n in 3u32..=5,
        seed_cells in prop::collection::vec(0u64..2, 1..32),
        // Few distinct addresses over many queries → plenty of memo hits.
        query_addrs in prop::collection::vec(0u64..6, 2..12),
        // Encoded (layer, address, value) triples (the vendored proptest
        // has no tuple strategies).
        updates in prop::collection::vec(0u64..(300 * 32 * 2), 0..6),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let addresses: Vec<AddressState> = query_addrs
            .iter()
            .map(|&a| AddressState::classical(n, a % capacity).unwrap())
            .collect();
        let updates: Vec<(u64, u64, u64)> = updates
            .into_iter()
            .map(|enc| (enc / 64, (enc / 2) % capacity, enc % 2))
            .collect();
        let cap = Capacity::new(capacity).unwrap();
        let backends: [Box<dyn QramModel>; 3] = [
            Box::new(BucketBrigadeQram::new(cap)),
            Box::new(FatTreeQram::new(cap)),
            Box::new(ShardedQram::fat_tree(cap, 2)),
        ];
        for backend in &backends {
            let (col_outs, col_stats) =
                execute_batch_traced(backend.as_ref(), &memory, &addresses, &updates).unwrap();
            let (row_outs, row_stats) =
                execute_batch_rowwise(backend.as_ref(), &memory, &addresses, &updates).unwrap();
            prop_assert!(col_outs == row_outs, "{} columnar outcomes diverge", backend.name());
            prop_assert!(
                col_stats == row_stats,
                "{} columnar stats diverge: {col_stats:?} != {row_stats:?}", backend.name()
            );
            let plain =
                execute_batch_unmemoized(backend.as_ref(), &memory, &addresses, &updates)
                    .unwrap();
            prop_assert!(col_outs == plain, "{} diverges from interpreter", backend.name());
        }
    }

    /// A Zipf-skewed batch — wide superpositions whose branches pile onto
    /// one hot shard, mixed with a minority of cross-shard queries — is
    /// identical under `execute_queries` (columnar kernel; work-stealing
    /// fan-out on the interpreter path) and the pinned sequential
    /// reference, with interleaved writes landing on the hot shard.
    #[test]
    fn skewed_shard_loads_keep_deterministic_outcomes(
        n in 5u32..=7,
        hot_shard in 0u64..4,
        seed_cells in prop::collection::vec(0u64..2, 1..128),
        query_strides in prop::collection::vec(1u64..17, 2..6),
        updates in prop::collection::vec(0u64..(200 * 128 * 2), 0..4),
    ) {
        let capacity = 1u64 << n;
        let mut cells = seed_cells;
        cells.resize(capacity as usize, 0);
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let local = capacity / 4;
        // Hot queries: every branch ≡ hot_shard (mod 4). One cold query
        // spans all shards so recombination order is exercised too.
        let mut addresses: Vec<AddressState> = query_strides
            .iter()
            .map(|&stride| {
                let mut a: Vec<u64> = (0..local)
                    .map(|i| ((i * stride) % local) * 4 + hot_shard)
                    .collect();
                a.sort_unstable();
                a.dedup();
                AddressState::uniform(n, &a).unwrap()
            })
            .collect();
        addresses.push(AddressState::full_superposition(n));
        // Writes target the hot shard's cells.
        let updates: Vec<(u64, u64, u64)> = updates
            .into_iter()
            .map(|enc| (enc / 256, ((enc / 2) % local) * 4 + hot_shard, enc % 2))
            .collect();
        let sharded = ShardedQram::fat_tree(Capacity::new(capacity).unwrap(), 4);
        let fast = sharded.execute_queries(&memory, &addresses, &updates).unwrap();
        let reference = sharded
            .execute_queries_sequential(&memory, &addresses, &updates)
            .unwrap();
        prop_assert_eq!(fast, reference);
    }

    /// Query outcomes are unitary-consistent: branch amplitudes are
    /// preserved by execution (the QRAM only permutes/labels branches).
    #[test]
    fn execution_preserves_amplitudes(n in 2u32..=6, k in 2usize..6) {
        let capacity = 1u64 << n;
        let cells: Vec<u64> = (0..capacity).map(|i| (i / 3) % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let k = k.min(capacity as usize);
        let spacing = capacity / k as u64; // >= 1 since k <= capacity
        let addresses: Vec<u64> = (0..k as u64).map(|i| i * spacing).collect();
        let address = AddressState::uniform(n, &addresses).unwrap();
        let qram = FatTreeQram::new(Capacity::new(capacity).unwrap());
        let outcome = qram.execute_query(&memory, &address).unwrap();
        let total: f64 = outcome.iter().map(|&(amp, _, _)| amp.norm_sqr()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for &(amp, _, _) in outcome.iter() {
            prop_assert!((amp.norm_sqr() - 1.0 / k as f64).abs() < 1e-9);
        }
    }
}

/// Work-stealing determinism. `QRAM_NUM_THREADS` is read once per process
/// (`OnceLock`), so the worker-count sweep goes through the explicit-count
/// entry point `execute_layers_parallel_with_workers` — the same deque the
/// env var configures — for counts 1, 2, and 8.
#[cfg(feature = "parallel")]
mod work_stealing {
    use fat_tree_qram::core::exec::{
        execute_layers_parallel_with_workers, execute_layers_sequential,
    };
    use fat_tree_qram::core::{Op, QramModel, QubitTag};
    use fat_tree_qram::metrics::Capacity;
    use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
    use proptest::prelude::*;

    proptest! {
        /// The work-stealing branch fan-out returns the sequential
        /// interpreter's exact `Execution` — outcomes, gate counts, and,
        /// on corrupted streams, the same first error — regardless of
        /// worker count (1 worker degenerates to one thread draining every
        /// chunk; 8 workers on skewed chunk sizes forces steals).
        #[test]
        fn stealing_fan_out_matches_sequential_for_any_worker_count(
            n in 4u32..=7,
            arch_pick in 0u64..2,
            seed_cells in prop::collection::vec(0u64..2, 1..128),
            stride in 1u64..37,
            corrupt in 0u64..3,
            position in 0u64..10_000,
        ) {
            let capacity = 1u64 << n;
            let mut cells = seed_cells;
            cells.resize(capacity as usize, 0);
            let memory = ClassicalMemory::from_words(1, &cells).unwrap();
            // Wide, stride-clustered superpositions: enough branches to
            // cut into many chunks, unevenly enough to provoke stealing.
            let mut picks: Vec<u64> = (0..capacity).map(|i| (i * stride) % capacity).collect();
            picks.sort_unstable();
            picks.dedup();
            let address = AddressState::uniform(n, &picks).unwrap();
            let cap = Capacity::new(capacity).unwrap();
            let arch: Box<dyn QramModel> = if arch_pick == 1 {
                Box::new(fat_tree_qram::core::FatTreeQram::new(cap))
            } else {
                Box::new(fat_tree_qram::core::BucketBrigadeQram::new(cap))
            };
            let mut layers = arch.query_layers();
            let layer = (position as usize) % layers.len();
            match corrupt {
                0 => {} // valid stream
                1 => layers[layer].ops.push(Op::Store(position as u32 % n)),
                _ => layers[layer].ops.push(Op::Load(QubitTag::Bus)),
            }
            let reference = execute_layers_sequential(&layers, &memory, &address);
            for workers in [1usize, 2, 8] {
                let stolen =
                    execute_layers_parallel_with_workers(&layers, &memory, &address, workers);
                match (&stolen, &reference) {
                    (Ok(a), Ok(b)) => prop_assert!(a == b, "{workers} workers diverge"),
                    (Err(a), Err(b)) => prop_assert!(
                        a == b,
                        "{workers} workers surface error {a:?}, sequential {b:?}"
                    ),
                    _ => prop_assert!(
                        false,
                        "{workers} workers disagree with sequential on Ok/Err"
                    ),
                }
            }
        }
    }
}
