//! Cross-crate scheduling integration: online admission, offline FIFO, the
//! closed-loop stream simulator, and the architecture cost models must be
//! mutually consistent.

use fat_tree_qram::arch::{Architecture, PartialFatTree};
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::sched::{
    poisson_arrivals, schedule_fifo, simulate_streams, OnlineFifoScheduler, QramServer,
    StreamWorkload,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn online_offline_and_stream_views_agree_on_saturated_load() {
    // Under saturation (all requests at t = 0), three independent models of
    // the same Fat-Tree must produce identical makespans:
    // offline FIFO, incremental online FIFO, and the stream simulator.
    let capacity = Capacity::new(256).unwrap();
    let server = QramServer::fat_tree_integer_layers(capacity);
    let q = 25usize;

    let requests: Vec<_> = (0..q)
        .map(|id| fat_tree_qram::sched::QueryRequest {
            id,
            arrival: Layers::ZERO,
        })
        .collect();
    let offline = schedule_fifo(&requests, &server);

    let mut online = OnlineFifoScheduler::new(server);
    for &r in &requests {
        online.submit(r).unwrap();
    }
    let online = online.finish();

    let streams = vec![StreamWorkload::alternating(1, Layers::ZERO); q];
    let report = simulate_streams(&streams, &server);

    assert_eq!(offline.makespan(), online.makespan());
    assert_eq!(offline.makespan(), report.makespan());
    // And the pipeline object agrees too.
    let schedule = fat_tree_qram::core::FatTreeQram::new(capacity).pipeline(q);
    assert_eq!(offline.makespan().get(), schedule.makespan_integer() as f64);
}

#[test]
fn fat_tree_absorbs_bursts_that_overwhelm_bucket_brigade() {
    // A bursty open-loop workload: mean response latency on Fat-Tree stays
    // near the single-query latency, while BB queues grow unboundedly.
    let capacity = Capacity::new(1024).unwrap();
    let timing = TimingModel::paper_default();
    let mut rng = StdRng::seed_from_u64(1234);
    // Arrival rate of one query per 12 layers: below Fat-Tree's capacity
    // (one per 8.25) but far above BB's (one per 80.125).
    let requests = poisson_arrivals(1.0 / 12.0, 120, &mut rng);

    let ft = QramServer::for_architecture(Architecture::FatTree, capacity, timing);
    let bb = QramServer::for_architecture(Architecture::BucketBrigade, capacity, timing);
    let ft_mean = mean_latency(&schedule_fifo(&requests, &ft));
    let bb_mean = mean_latency(&schedule_fifo(&requests, &bb));

    let t1 = 8.25 * 10.0 - 0.125;
    assert!(
        ft_mean < 3.0 * t1,
        "Fat-Tree mean latency {ft_mean} should stay near t1 = {t1}"
    );
    assert!(
        bb_mean > 10.0 * ft_mean,
        "BB mean latency {bb_mean} should blow up vs Fat-Tree {ft_mean}"
    );
}

#[test]
fn partial_duplication_interpolates_queueing_behaviour() {
    // The ablation's capped Fat-Trees must order by cap under load.
    let capacity = Capacity::new(1024).unwrap();
    let timing = TimingModel::paper_default();
    let mut rng = StdRng::seed_from_u64(77);
    let requests = poisson_arrivals(1.0 / 15.0, 80, &mut rng);
    let mut prev = f64::INFINITY;
    for cap_c in [1u32, 2, 5, 10] {
        let tree = PartialFatTree::new(capacity, cap_c);
        let server = QramServer::new(
            tree.query_parallelism(),
            tree.amortized_query_latency(&timing),
            tree.single_query_latency(&timing),
        );
        let mean = mean_latency(&schedule_fifo(&requests, &server));
        assert!(
            mean <= prev * 1.001,
            "cap {cap_c}: mean latency {mean} above cap-{} latency {prev}",
            cap_c - 1
        );
        prev = mean;
    }
}

fn mean_latency(schedule: &fat_tree_qram::sched::Schedule) -> f64 {
    let entries = schedule.entries();
    entries
        .iter()
        .map(|e| e.response_latency().get())
        .sum::<f64>()
        / entries.len() as f64
}
