//! Serving-layer integration properties: the policy-stack refactor must be
//! bit-equal to the pre-refactor schedulers, and the event-driven reactor
//! must realize exactly the analytic schedules.

use fat_tree_qram::core::ShardedQram;
use fat_tree_qram::metrics::{Capacity, Layers, TimingModel};
use fat_tree_qram::noise::GateErrorRates;
use fat_tree_qram::qsim::branch::{AddressState, ClassicalMemory};
use fat_tree_qram::sched::{
    schedule_fifo, NoiseAwareAdmission, OnlineFifoScheduler, PolicyScheduler, QramServer,
    QueryRequest, Schedule, ScheduledQuery, Scheduler,
};
use fat_tree_qram::serve::{QramService, ServiceRequest};
use proptest::prelude::*;

/// The pre-refactor FIFO admission recurrence, transcribed verbatim from
/// the PR-4 `schedule_fifo`/`OnlineFifoScheduler::submit` bodies: the
/// reference the policy-stack adapters are pinned against, bit for bit.
fn reference_fifo(requests: &[QueryRequest], server: &QramServer) -> Schedule {
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        requests[a]
            .arrival
            .partial_cmp(&requests[b].arrival)
            .expect("arrivals are finite")
            .then(a.cmp(&b))
    });
    let mut entries = Vec::with_capacity(requests.len());
    let mut last_start: Option<Layers> = None;
    let mut finishes: Vec<Layers> = Vec::new();
    for (k, &idx) in order.iter().enumerate() {
        let req = requests[idx];
        let mut start = req.arrival;
        if let Some(prev) = last_start {
            start = start.max(prev + server.interval());
        }
        let p = server.parallelism() as usize;
        if k >= p {
            start = start.max(finishes[k - p]);
        }
        let finish = start + server.latency();
        finishes.push(finish);
        last_start = Some(start);
        entries.push(ScheduledQuery {
            request: req,
            start,
            finish,
        });
    }
    Schedule::from_entries(entries)
}

/// Deterministic pseudo-random arrivals (already sorted) from integer
/// strategy inputs, shaped like a mildly bursty open-loop trace.
fn arrivals_from_gaps(gaps: &[u16]) -> Vec<QueryRequest> {
    let mut t = 0.0;
    gaps.iter()
        .enumerate()
        .map(|(id, &g)| {
            t += f64::from(g) / 16.0;
            QueryRequest {
                id,
                arrival: Layers::new(t),
            }
        })
        .collect()
}

proptest! {
    /// `schedule_fifo` and `OnlineFifoScheduler`, now thin adapters over
    /// the shared `PipelineCore`, must reproduce the pre-refactor
    /// recurrence bit-for-bit — on pipelined, sequential, and sharded
    /// servers alike (the ISSUE-5 acceptance criterion).
    #[test]
    fn refactored_schedulers_are_bit_equal_to_reference(
        gaps in prop::collection::vec(0u16..400, 1..60),
        n_exp in 3u32..=12,
        k_exp in 0u32..=3,
    ) {
        let capacity = Capacity::new(1u64 << n_exp).unwrap();
        let timing = TimingModel::paper_default();
        let k = 1u32 << k_exp.min(n_exp - 1);
        let servers = [
            QramServer::fat_tree_integer_layers(capacity),
            QramServer::bucket_brigade_integer_layers(capacity),
            QramServer::for_model(&ShardedQram::fat_tree(capacity, k), &timing),
        ];
        let requests = arrivals_from_gaps(&gaps);
        for server in servers {
            let expected = reference_fifo(&requests, &server);
            let offline = schedule_fifo(&requests, &server);
            prop_assert_eq!(offline.entries(), expected.entries());
            let mut online = OnlineFifoScheduler::new(server);
            for &r in &requests {
                online.submit(r).unwrap();
            }
            let online = online.finish();
            prop_assert_eq!(online.entries(), expected.entries());
        }
    }

    /// The event-driven reactor realizes exactly the analytic online-FIFO
    /// schedule on the equivalent server — for the single-shard backend
    /// (the ISSUE-5 reference pin) and for K ∈ {2, 4, 8}: strict-FIFO
    /// round-robin dispatch over identical shards *is* the divided-interval
    /// aggregate server, constraint for constraint.
    #[test]
    fn reactor_completion_schedule_equals_online_fifo(
        gaps in prop::collection::vec(0u16..100, 1..40),
        addr_seeds in prop::collection::vec(0u64..4096, 1..40),
        k_exp in 0u32..=3,
    ) {
        let capacity = Capacity::new(256).unwrap();
        let timing = TimingModel::paper_default();
        let k = 1u32 << k_exp;
        let requests = arrivals_from_gaps(&gaps);
        let service_requests: Vec<ServiceRequest> = requests
            .iter()
            .zip(addr_seeds.iter().cycle())
            .map(|(r, &seed)| ServiceRequest {
                id: r.id,
                arrival: r.arrival,
                address: AddressState::classical(8, seed % 256).unwrap(),
            })
            .collect();
        let qram = ShardedQram::fat_tree(capacity, k);
        let server = QramServer::for_model(&qram, &timing);
        let mut service = QramService::fifo(qram, timing);
        let cells: Vec<u64> = (0..256).map(|i| (i * 3 + 1) % 2).collect();
        let memory = ClassicalMemory::from_words(1, &cells).unwrap();
        let report = service.serve(&memory, service_requests).unwrap();

        let mut online = OnlineFifoScheduler::new(server);
        for &r in &requests {
            online.submit(r).unwrap();
        }
        let realized = report.schedule();
        let online = online.finish();
        prop_assert_eq!(realized.entries(), online.entries());
        // And the real data came back: every outcome matches the ideal
        // query semantics.
        for (c, out) in report.completed().iter().zip(report.outcomes()) {
            let ideal = memory.ideal_query(
                &AddressState::classical(8, addr_seeds[c.id % addr_seeds.len()] % 256).unwrap(),
            );
            prop_assert!((out.fidelity(&ideal) - 1.0).abs() < 1e-9);
        }
    }

    /// Round-robin fairness: on K ∈ {2, 4, 8} no shard queue starves —
    /// dispatch counts differ by at most one across shards, whatever the
    /// arrival pattern.
    #[test]
    fn no_shard_queue_starves(
        gaps in prop::collection::vec(0u16..50, 8..48),
        k_exp in 1u32..=3,
    ) {
        let k = 1u32 << k_exp;
        let capacity = Capacity::new(1024).unwrap();
        let timing = TimingModel::paper_default();
        let qram = ShardedQram::fat_tree(capacity, k);
        let mut service = QramService::fifo(qram, timing);
        let requests: Vec<ServiceRequest> = arrivals_from_gaps(&gaps)
            .into_iter()
            .map(|r| ServiceRequest {
                id: r.id,
                arrival: r.arrival,
                address: AddressState::classical(10, (r.id as u64 * 37) % 1024).unwrap(),
            })
            .collect();
        let total = requests.len() as u64;
        let memory = ClassicalMemory::zeros(1024);
        let report = service.serve(&memory, requests).unwrap();
        let counts = report.per_shard_dispatches();
        prop_assert_eq!(counts.len(), k as usize);
        prop_assert_eq!(counts.iter().sum::<u64>(), total);
        let max = counts.iter().copied().max().unwrap();
        let min = counts.iter().copied().min().unwrap();
        prop_assert!(max - min <= 1, "starved queues: {:?}", counts);
    }

    /// Noise-aware admission picks strictly smaller concurrent batches
    /// than FIFO when the post-distillation fidelity target is tight, and
    /// degenerates to FIFO exactly when it is loose (Table 4's
    /// parallelism–fidelity trade-off as a scheduling policy).
    #[test]
    fn noise_aware_admission_trades_throughput_for_fidelity(
        gaps in prop::collection::vec(0u16..8, 12..40),
    ) {
        let capacity = Capacity::new(16).unwrap();
        let timing = TimingModel::paper_default();
        let qram = ShardedQram::fat_tree(capacity, 2);
        let server = QramServer::for_model(&qram, &timing);
        // Table 4 operating point: ε = 0.16 per query.
        let rates = GateErrorRates::from_cswap_rate(2e-3);
        let requests = arrivals_from_gaps(&gaps);

        let tight = NoiseAwareAdmission::for_model(&qram, &rates, 1e-3);
        prop_assert!(tight.batch_cap(server.parallelism()) < server.parallelism());

        let mut fifo = OnlineFifoScheduler::new(server);
        let mut tight_sched = PolicyScheduler::new(server, tight);
        let mut loose_sched =
            PolicyScheduler::new(server, NoiseAwareAdmission::for_model(&qram, &rates, 0.9));
        for &r in &requests {
            fifo.submit(r).unwrap();
            tight_sched.admit(r).unwrap();
            loose_sched.admit(r).unwrap();
        }
        let fifo = fifo.finish();
        let tight = tight_sched.into_schedule();
        let loose = loose_sched.into_schedule();
        // Loose target: no distillation pressure, identical to FIFO.
        prop_assert_eq!(loose.entries(), fifo.entries());
        // Tight target: every query still completes, but the saturated
        // burst serializes into smaller concurrent batches, so the
        // makespan can only grow — and grows strictly under saturation.
        prop_assert_eq!(tight.entries().len(), fifo.entries().len());
        prop_assert!(tight.makespan() >= fifo.makespan());
        prop_assert!(tight.total_latency() >= fifo.total_latency());
    }
}

#[test]
fn reactor_handles_bursty_traffic_end_to_end() {
    // A deterministic bursty trace through the full stack: generator →
    // service → histogram. Tail latency must strictly exceed the median
    // under bursts (queueing), and every accepted query completes.
    use fat_tree_qram::sched::bursty_arrivals;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let capacity = Capacity::new(4096).unwrap();
    let timing = TimingModel::paper_default();
    let qram = ShardedQram::fat_tree(capacity, 4);
    let mut service = QramService::fifo(qram, timing);
    let mut rng = StdRng::seed_from_u64(20260727);
    // ON bursts near 4× the aggregate service rate, long OFF gaps.
    let aggregate_rate = 4.0 / 8.25;
    let arrivals = bursty_arrivals(4.0 * aggregate_rate, 40.0, 120.0, 400, &mut rng);
    let requests: Vec<ServiceRequest> = arrivals
        .iter()
        .map(|r| ServiceRequest {
            id: r.id,
            arrival: r.arrival,
            address: AddressState::classical(12, (r.id as u64 * 1103) % 4096).unwrap(),
        })
        .collect();
    let memory = ClassicalMemory::zeros(4096);
    let report = service.serve(&memory, requests).unwrap();
    assert_eq!(report.completed().len(), 400);
    let hist = report.latency_histogram();
    assert_eq!(hist.count(), 400);
    let (p50, p99) = (hist.p50().unwrap(), hist.p99().unwrap());
    assert!(
        p99 > p50,
        "bursts must induce a latency tail: p50 {p50} p99 {p99}"
    );
    // The floor is the monolithic single-query latency.
    let t1 = service.equivalent_server().latency();
    assert!(hist.min() >= t1);
}

#[test]
fn noise_aware_service_serves_fewer_queries_concurrently() {
    // The same tight-target policy mounted on the live service: peak
    // in-flight occupancy (reconstructed from the realized schedule) must
    // stay at the distillation batch cap while FIFO fills the pipeline.
    let capacity = Capacity::new(16).unwrap();
    let timing = TimingModel::paper_default();
    let rates = GateErrorRates::from_cswap_rate(2e-3);
    let make = || ShardedQram::fat_tree(capacity, 2);
    let requests = |n: usize| -> Vec<ServiceRequest> {
        (0..n)
            .map(|id| ServiceRequest {
                id,
                arrival: Layers::ZERO,
                address: AddressState::classical(4, id as u64 % 16).unwrap(),
            })
            .collect()
    };
    let memory = ClassicalMemory::zeros(16);

    let peak_inflight = |schedule: &[fat_tree_qram::sched::ScheduledQuery]| -> usize {
        schedule
            .iter()
            .map(|q| {
                schedule
                    .iter()
                    .filter(|o| o.start <= q.start && q.start < o.finish)
                    .count()
            })
            .max()
            .unwrap()
    };

    let mut fifo_service = QramService::fifo(make(), timing);
    let fifo_report = fifo_service.serve(&memory, requests(12)).unwrap();
    let fifo_schedule = fifo_report.schedule();

    let tight = NoiseAwareAdmission::for_model(&make(), &rates, 1e-3);
    assert_eq!(tight.copies(), 4);
    let mut noise_service = QramService::new(
        make(),
        timing,
        tight,
        fat_tree_qram::serve::ServiceConfig::default(),
    );
    let noise_report = noise_service.serve(&memory, requests(12)).unwrap();
    let noise_schedule = noise_report.schedule();

    let cap = tight.batch_cap(QramServer::for_model(&make(), &timing).parallelism()) as usize;
    assert!(peak_inflight(fifo_schedule.entries()) > cap);
    assert!(peak_inflight(noise_schedule.entries()) <= cap);
    assert!(noise_schedule.makespan() > fifo_schedule.makespan());
}
