//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal subset: [`Criterion`], benchmark groups, `iter` /
//! `iter_batched`, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Each benchmark is warmed up briefly, then
//! timed over an adaptive iteration count, and the mean time per iteration
//! is printed. Set `CRITERION_JSON` to a file path to also append one JSON
//! line per benchmark (used by `scripts/bench_smoke.sh`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from removing the
/// computation producing `x`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost — accepted for API
/// compatibility; this stand-in always runs setup per batch of one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    /// Nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    ns_per_iter: f64,
    measurement_budget: Duration,
}

impl Bencher {
    fn new(measurement_budget: Duration) -> Self {
        Bencher {
            ns_per_iter: f64::NAN,
            measurement_budget,
        }
    }

    /// Times `routine`, called repeatedly within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration estimate.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.measurement_budget / 4 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let iters = ((self.measurement_budget.as_secs_f64() / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.ns_per_iter = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        let budget_start = Instant::now();
        while total < self.measurement_budget
            && budget_start.elapsed() < self.measurement_budget * 4
            && iters < 10_000_000
        {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
    }
}

fn report(group: Option<&str>, id: &str, ns_per_iter: f64) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    println!("bench: {full_id:<48} {ns_per_iter:>14.1} ns/iter");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{full_id}\",\"ns_per_iter\":{ns_per_iter:.1}}}"
            );
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher = Bencher::new(self.criterion.measurement_budget);
        f(&mut bencher);
        report(Some(&self.name), &id.into(), bencher.ns_per_iter);
    }

    /// Finishes the group (no-op in this stand-in).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    measurement_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let millis = std::env::var("CRITERION_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200);
        Criterion {
            measurement_budget: Duration::from_millis(millis),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_budget = budget;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut bencher = Bencher::new(self.measurement_budget);
        f(&mut bencher);
        report(None, &id.into(), bencher.ns_per_iter);
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
