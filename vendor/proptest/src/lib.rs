//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal subset: the [`proptest!`] and [`prop_assert!`] macros, a
//! [`strategy::Strategy`] trait implemented for primitive ranges, and
//! [`collection::vec`]. Each property runs a fixed number of random cases
//! (default 128, override with the `PROPTEST_CASES` environment variable)
//! from a deterministic per-test seed. Failing cases are reported with
//! their generated inputs; there is no shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use std::ops::{Range, RangeInclusive};

    use rand::{Rng, RngCore};

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut dyn RngCore) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut dyn RngCore) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut dyn RngCore) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut dyn RngCore) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// A strategy yielding one fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut dyn RngCore) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use std::ops::{Range, RangeInclusive};

    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;

    /// An inclusive-exclusive bound on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut dyn RngCore) -> Vec<S::Value> {
            let len = rng.random_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Creates a strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// A failed property case, carrying the failure message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The number of cases each property runs (env `PROPTEST_CASES`, default
/// 128).
#[must_use]
pub fn case_count() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// A deterministic RNG for one named property.
#[must_use]
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the test name gives every property its own stream.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (with its generated inputs) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `case_count()` random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                let cases = $crate::case_count();
                for case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let described = format!(
                        concat!("(", $(stringify!($arg), " = {:?}, ",)* ")"),
                        $(&$arg),*
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{cases} failed: {e}\n  inputs: {described}"
                        );
                    }
                }
            }
        )*
    };
}

/// Re-exports matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest, TestCaseError};

    /// The `prop` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 1u32..=8, y in 0u64..100, f in 0.5f64..2.0) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in prop::collection::vec(0u64..2, 1..256)) {
            prop_assert!(!v.is_empty() && v.len() < 256);
            prop_assert!(v.iter().all(|&b| b < 2));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_rng("same");
        let mut b = crate::test_rng("same");
        let s = 0u64..1000;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
