//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors
//! this minimal, API-compatible subset of `rand` 0.9: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform sampling of primitives and
//! ranges, and a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! splitmix64). Statistical quality is more than adequate for the
//! Monte-Carlo experiments in this workspace; it is **not** a
//! cryptographic generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for
/// `rand`'s `StandardUniform` distribution).
pub trait Random: Sized {
    /// Draws one uniformly distributed value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly (the stand-in for `rand`'s
/// `SampleRange`).
pub trait SampleRange<T>: Sized {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Random::random(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f32 = Random::random(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates an RNG from OS entropy; this offline stand-in derives the
    /// seed from the system clock instead.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED_5EED);
        Self::seed_from_u64(nanos)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator — the stand-in for `rand`'s
    /// `StdRng`. Not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        const N: u32 = 100_000;
        for _ in 0..N {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(N);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.random_range(0..3u8);
            seen[v as usize] = true;
            let f = rng.random_range(10.0..150.0f64);
            assert!((10.0..150.0).contains(&f));
            let i = rng.random_range(5..=9u32);
            assert!((5..=9).contains(&i));
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut StdRng = &mut rng;
        let _ = draw(dyn_rng);
    }
}
